"""Unit tests for complex-arithmetic and scalar-MAC instruction selection."""

import numpy as np

from repro.asip.isa_library import generic_scalar_dsp, vliw_simd_dsp
from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir.verifier import verify_module
from repro.mlab.interp import MatlabInterpreter


def run_mix(source, args, inputs, processor="vliw_simd_dsp",
            options=None):
    result = compile_source(source, args=args, processor=processor,
                            options=options or CompilerOptions(simd=False))
    verify_module(result.module)
    run = result.simulate(list(inputs))
    entry = result.sprog.entry.func.name
    golden = MatlabInterpreter(source).call(entry, list(inputs))
    assert np.allclose(np.asarray(run.outputs[0]), np.asarray(golden[0]),
                       atol=1e-9, rtol=1e-9)
    return run.report.instruction_counts


CPLX2 = [arg((1, 8), complex=True), arg((1, 8), complex=True)]


def cvec(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((1, 8)) + 1j * rng.standard_normal((1, 8))


def test_complex_multiply_selected():
    src = """
function y = f(a, b)
y = complex(zeros(1, 8), zeros(1, 8));
for k = 1:8
    y(k) = a(k) * b(k);
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(1), cvec(2)])
    assert mix.get("cmul_c128", 0) == 8


def test_complex_add_sub_selected():
    src = """
function y = f(a, b)
y = complex(zeros(1, 8), zeros(1, 8));
for k = 1:8
    y(k) = (a(k) + b(k)) - (a(k) - b(k));
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(3), cvec(4)])
    assert mix.get("cadd_c128", 0) >= 8
    assert mix.get("csub_c128", 0) >= 8


def test_cmac_fuses_multiply_accumulate():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(5), cvec(6)])
    assert mix.get("cmac_c128", 0) == 8
    assert mix.get("cmul_c128", 0) == 0  # fused away


def test_cmac_commuted_form():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = a(k) * b(k) + s;
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(7), cvec(8)])
    assert mix.get("cmac_c128", 0) == 8


def test_cconj_selected():
    src = """
function y = f(a, b)
y = complex(zeros(1, 8), zeros(1, 8));
for k = 1:8
    y(k) = conj(a(k)) + b(k);
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(9), cvec(10)])
    assert mix.get("cconj_c128", 0) == 8


def test_cmag2_pattern_both_orders():
    src = """
function [p, q] = f(z, w)
p = zeros(1, 8);
q = zeros(1, 8);
for k = 1:8
    p(k) = real(z(k)) * real(z(k)) + imag(z(k)) * imag(z(k));
    q(k) = imag(w(k)) * imag(w(k)) + real(w(k)) * real(w(k));
end
end
"""
    result = compile_source(src, args=CPLX2,
                            options=CompilerOptions(simd=False))
    run = result.simulate([cvec(11), cvec(12)])
    assert run.report.instruction_counts.get("cmag2_c128", 0) == 16


def test_cmag2_requires_matching_operand():
    # real(z)*real(z) + imag(w)*imag(w) with z != w must NOT fuse.
    src = """
function p = f(z, w)
p = zeros(1, 8);
for k = 1:8
    p(k) = real(z(k)) * real(z(k)) + imag(w(k)) * imag(w(k));
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(13), cvec(14)])
    assert mix.get("cmag2_c128", 0) == 0


def test_no_complex_unit_no_intrinsics():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    processor = generic_scalar_dsp()
    mix = run_mix(src, CPLX2, [cvec(15), cvec(16)], processor=processor)
    assert not any(name.startswith("c") for name in mix)


def test_complex_isel_disabled_by_option():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    mix = run_mix(src, CPLX2, [cvec(17), cvec(18)],
                  options=CompilerOptions(simd=False, complex_isel=False,
                                          scalar_mac=False))
    assert not any(name.startswith("cm") for name in mix)


def test_scalar_mac_on_real_kernel():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    args = [arg((1, 8)), arg((1, 8))]
    rng = np.random.default_rng(19)
    a, b = rng.standard_normal((1, 8)), rng.standard_normal((1, 8))
    mix = run_mix(src, args, [a, b])
    assert mix.get("mac_f64", 0) == 8


def test_scalar_mac_single_precision():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    args = [arg((1, 8), dtype="single"), arg((1, 8), dtype="single")]
    rng = np.random.default_rng(20)
    a = rng.standard_normal((1, 8)).astype(np.float32)
    b = rng.standard_normal((1, 8)).astype(np.float32)
    result = compile_source(src, args=args,
                            options=CompilerOptions(simd=False))
    run = result.simulate([a, b])
    assert run.report.instruction_counts.get("mac_f32", 0) == 8


def test_mac_not_applied_to_integer_math():
    # i32 index arithmetic 'i + j*24' must not become a float MAC.
    src = "function C = f(A, B)\nC = A * B;\nend"
    args = [arg((4, 4)), arg((4, 4))]
    rng = np.random.default_rng(21)
    a, b = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
    result = compile_source(src, args=args,
                            options=CompilerOptions(simd=False))
    run = result.simulate([a, b])
    golden = a @ b
    assert np.allclose(np.asarray(run.outputs[0]), golden)


# ----------------------------------------------------------------------
# Clip idiom
# ----------------------------------------------------------------------


def test_clip_idiom_selected():
    src = """
function y = f(x, lo, hi)
y = zeros(1, 8);
for k = 1:8
    y(k) = min(max(x(k), lo), hi);
end
end
"""
    args = [arg((1, 8)), arg(), arg()]
    rng = np.random.default_rng(30)
    x = rng.standard_normal((1, 8)) * 3
    mix = run_mix(src, args, [x, -1.0, 1.0])
    assert mix.get("clip_f64", 0) == 8


def test_clip_idiom_semantics_every_region():
    src = "function y = f(x, lo, hi)\ny = min(max(x, lo), hi);\nend"
    args = [arg(), arg(), arg()]
    for x in (-5.0, -1.0, 0.0, 1.0, 5.0):
        mix = run_mix(src, args, [x, -1.0, 1.0])
        assert mix.get("clip_f64", 0) == 1


def test_clip_inverted_bounds_not_miscompiled():
    # min(max(x, lo), hi) with lo > hi must still evaluate exactly as
    # written (result is hi).
    src = "function y = f(x)\ny = min(max(x, 2), -2);\nend"
    result = compile_source(src, args=[arg()],
                            options=CompilerOptions(simd=False))
    assert result.simulate([0.0]).outputs[0] == -2.0


def test_max_outer_form_not_fused():
    # max(min(x, hi), lo) is NOT the clip instruction's semantics.
    src = "function y = f(x)\ny = max(min(x, 2), -2);\nend"
    result = compile_source(src, args=[arg()],
                            options=CompilerOptions(simd=False))
    mix = result.simulate([0.0]).report.instruction_counts
    assert mix.get("clip_f64", 0) == 0


def test_clip_not_selected_without_instruction():
    src = "function y = f(x)\ny = min(max(x, -1), 1);\nend"
    processor = generic_scalar_dsp()
    mix = run_mix(src, [arg()], [0.5], processor=processor)
    assert "clip_f64" not in mix
