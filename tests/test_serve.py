"""Concurrency tier for the ``repro-serve`` compile daemon.

The daemon's three contracts, each proven under real concurrency:

* **Coalescing** — N simultaneous requests for one identical key cost
  exactly one compile (the service-side compile counter says one; the
  other N-1 requests are answered as coalesced followers or warm-cache
  hits with byte-identical C).
* **Admission control** — under overload the daemon sheds *new* work
  with a structured refusal, and every request it accepted still
  terminates in exactly one ``ok`` result: shedding happens at
  admission or never.
* **Drain** — shutdown closes admission, finishes the in-flight work,
  and resolves every outstanding future; requests arriving during the
  drain are shed as ``draining``.

The HTTP layer is exercised end-to-end over a real unix socket
(server in a background event loop thread, ``ServeClient`` callers),
and the SIGTERM path through a real ``repro-serve`` subprocess.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import (CompileDaemon, CompileRequest, RequestError,
                         Server, ServeClient)

pytestmark = pytest.mark.timeout(180)

FIR = ("function y = fir(x, h)\n"
       "y = zeros(1, 16);\n"
       "for i = 1:16\n"
       "y(i) = x(i) * h(i);\n"
       "end\n"
       "end\n")
FIR_ARGS = ["single:1x16", "single:1x16"]


def _distinct_request(tag: int) -> CompileRequest:
    return CompileRequest(
        source=(f"function y = k{tag}(x)\n"
                f"y = x * {tag}.0 + 1.0;\n"
                "end\n"),
        args=["double:1x32"])


# ---------------------------------------------------------------------
# Engine: warm cache + coalescing
# ---------------------------------------------------------------------

def test_roundtrip_then_warm_hit():
    with CompileDaemon(workers=1) as daemon:
        first = daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS))
        assert first.outcome == "accepted"
        result = first.wait(120)
        assert result.ok and not result.cached
        assert "fir" in result.c_source

        second = daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS))
        assert second.outcome == "hit"
        warm = second.wait(5)
        assert warm.ok and warm.cached
        assert warm.c_source == result.c_source
    counters = daemon.registry.snapshot()["counters"]
    assert counters["serve.compiles"] == 1
    assert counters["serve.cache_hits"] == 1


def test_concurrent_identical_requests_compile_exactly_once():
    n = 16
    with CompileDaemon(workers=2, queue_depth=n) as daemon:
        barrier = threading.Barrier(n)
        tickets = [None] * n

        def fire(index: int) -> None:
            barrier.wait()
            tickets[index] = daemon.submit(
                CompileRequest(source=FIR, args=FIR_ARGS))

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        results = [ticket.wait(120) for ticket in tickets]

    assert all(r.ok for r in results)
    assert len({r.c_source for r in results}) == 1
    outcomes = sorted(t.outcome for t in tickets)
    assert "shed" not in outcomes
    # Exactly one leader compiled; everyone else coalesced onto its
    # in-flight future or landed on the already-warm cache.
    counters = daemon.registry.snapshot()["counters"]
    assert counters["serve.compiles"] == 1
    assert counters["serve.accepted"] == 1
    assert counters.get("serve.coalesced", 0) \
        + counters.get("serve.cache_hits", 0) == n - 1
    # No duplicated work reached the disk layer either.
    assert daemon.cache.stats()["disk_write_races"] == 0


def test_distinct_requests_all_compile():
    n = 6
    with CompileDaemon(workers=2, queue_depth=n) as daemon:
        tickets = [daemon.submit(_distinct_request(tag))
                   for tag in range(n)]
        results = [ticket.wait(120) for ticket in tickets]
    assert all(r.ok for r in results)
    assert daemon.registry.snapshot()["counters"]["serve.compiles"] == n


def test_malformed_requests_are_refused_before_admission():
    with CompileDaemon(workers=1) as daemon:
        with pytest.raises(RequestError):
            daemon.submit(CompileRequest(source=FIR,
                                         args=["nonsense:axb"]))
        with pytest.raises(RequestError):
            daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS,
                                         processor="no_such_isa"))
        with pytest.raises(RequestError):
            daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS,
                                         options={"bogus_flag": True}))
        counters = daemon.registry.snapshot()["counters"]
        assert "serve.accepted" not in counters


def test_compile_error_is_structured_not_fatal():
    with CompileDaemon(workers=1) as daemon:
        bad = daemon.submit(CompileRequest(
            source="function y = broken(x)\ny = undefined_fn(x);\nend\n",
            args=["double:1x8"]))
        result = bad.wait(120)
        assert result.status == "error"
        assert result.detail
        # The daemon stays healthy for the next request.
        ok = daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS))
        assert ok.wait(120).ok


# ---------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------

def test_overload_sheds_without_losing_accepted_jobs():
    n = 12
    with CompileDaemon(workers=1, queue_depth=2, max_batch=1) as daemon:
        tickets = [daemon.submit(_distinct_request(100 + tag))
                   for tag in range(n)]
        accepted = [t for t in tickets if t.outcome == "accepted"]
        shed = [t for t in tickets if t.outcome == "shed"]
        assert len(accepted) + len(shed) == n
        # Submission outruns a 1-worker/1-per-batch pipeline with an
        # admission bound of 2, so most of the burst must shed...
        assert len(shed) >= n - 4
        assert all(t.result.status == "shed" for t in shed)
        assert all("overloaded" in t.result.detail for t in shed)
        # ...and every accepted job still terminates ok.
        results = [t.wait(120) for t in accepted]
        assert all(r.ok for r in results)
    counters = daemon.registry.snapshot()["counters"]
    assert counters["serve.shed"] == len(shed)
    assert counters["serve.compiles"] == len(accepted)


def test_sheds_recover_once_load_passes():
    with CompileDaemon(workers=1, queue_depth=1, max_batch=1) as daemon:
        first = daemon.submit(_distinct_request(200))
        burst = [daemon.submit(_distinct_request(201 + i))
                 for i in range(4)]
        assert any(t.outcome == "shed" for t in burst)
        assert first.wait(120).ok
        for ticket in burst:
            if ticket.outcome == "accepted":
                assert ticket.wait(120).ok
        # Quiet again: a fresh request is admitted.
        late = daemon.submit(_distinct_request(250))
        assert late.outcome == "accepted"
        assert late.wait(120).ok


# ---------------------------------------------------------------------
# Drain
# ---------------------------------------------------------------------

def test_drain_completes_inflight_and_sheds_newcomers():
    daemon = CompileDaemon(workers=2, queue_depth=8).start()
    tickets = [daemon.submit(_distinct_request(300 + tag))
               for tag in range(4)]
    stopper = threading.Thread(target=daemon.stop)
    stopper.start()
    try:
        results = [t.wait(120) for t in tickets]
        assert all(r.ok for r in results)
    finally:
        stopper.join()
    late = daemon.submit(CompileRequest(source=FIR, args=FIR_ARGS))
    assert late.outcome == "shed"
    assert "draining" in late.result.detail


def test_stop_without_drain_resolves_futures_as_shed():
    daemon = CompileDaemon(workers=1, queue_depth=8,
                           max_batch=1).start()
    tickets = [daemon.submit(_distinct_request(400 + tag))
               for tag in range(6)]
    daemon.stop(drain=False)
    results = [t.wait(30) for t in tickets]
    # Whatever was mid-batch may finish ok; everything queued resolves
    # as shed — but nothing hangs and nothing is lost.
    assert all(r.status in ("ok", "shed") for r in results)
    assert any(r.status == "shed" for r in results)


# ---------------------------------------------------------------------
# HTTP layer over a real unix socket
# ---------------------------------------------------------------------

_PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? \S+$')


class _HTTPFixture:
    """Daemon + HTTP server in a background event-loop thread."""

    def __init__(self, tmp_path, **daemon_kw):
        import asyncio

        self.socket_path = str(tmp_path / "serve.sock")
        self.daemon = CompileDaemon(**daemon_kw).start()
        self.loop = asyncio.new_event_loop()
        self.server = Server(self.daemon, path=self.socket_path)
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop).result(timeout=10)

    def close(self):
        import asyncio

        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout=10)
        self.daemon.stop()
        asyncio.run_coroutine_threadsafe(
            self.server.close_connections(), self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def http_serve(tmp_path):
    fixture = _HTTPFixture(tmp_path, workers=2, queue_depth=8)
    try:
        yield fixture
    finally:
        fixture.close()


def test_http_compile_roundtrip_and_cache(http_serve):
    with ServeClient(path=http_serve.socket_path) as client:
        ready = client.wait_ready()
        assert ready["status"] == "ok"
        first = client.compile(FIR, FIR_ARGS)
        assert first["http_status"] == 200
        assert first["status"] == "ok" and not first["cached"]
        assert "fir" in first["c_source"]
        second = client.compile(FIR, FIR_ARGS)
        assert second["cached"] is True
        assert second["c_source"] == first["c_source"]
        # include_c=False keeps the payload small for load clients.
        lean = client.compile(FIR, FIR_ARGS, include_c=False)
        assert lean["status"] == "ok" and "c_source" not in lean


def test_http_error_codes(http_serve):
    with ServeClient(path=http_serve.socket_path) as client:
        bad_spec = client.compile(FIR, ["nonsense:axb"])
        assert bad_spec["http_status"] == 400
        assert bad_spec["status"] == "bad_request"

        bad_source = client.compile(
            "function y = broken(x)\ny = undefined_fn(x);\nend\n",
            ["double:1x8"])
        assert bad_source["http_status"] == 422
        assert bad_source["status"] == "error"

        status, _ctype, _body = client.request("GET", "/no_such_route")
        assert status == 404
        status, _ctype, _body = client.request("GET", "/compile")
        assert status == 405

        raw = client.request_json("POST", "/compile",
                                  {"args": ["double:1x8"]})
        assert raw["http_status"] == 400  # no source field


def test_http_metrics_and_stats(http_serve):
    with ServeClient(path=http_serve.socket_path) as client:
        client.compile(FIR, FIR_ARGS, include_c=False)
        client.compile(FIR, FIR_ARGS, include_c=False)
        text = client.metrics()
        for line in text.rstrip("\n").split("\n"):
            assert line.startswith("# TYPE ") or _PROM_LINE.match(line), \
                line
        assert "repro_serve_requests_total" in text
        assert "repro_serve_compiles_total" in text
        # Worker-side metrics merged through the batch results.
        assert "repro_service_exec_seconds" in text
        stats = client.stats()
        assert stats["snapshot"]["counters"]["serve.compiles"] == 1
        assert stats["health"]["workers"] == 2


def test_http_concurrent_identical_burst_coalesces(http_serve):
    n = 8
    replies = [None] * n
    barrier = threading.Barrier(n)

    def fire(index: int) -> None:
        with ServeClient(path=http_serve.socket_path) as client:
            barrier.wait()
            replies[index] = client.compile(FIR, FIR_ARGS)

    threads = [threading.Thread(target=fire, args=(i,))
               for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert all(r["status"] == "ok" for r in replies)
    assert len({r["c_source"] for r in replies}) == 1
    counters = http_serve.daemon.registry.snapshot()["counters"]
    assert counters["serve.compiles"] == 1


def test_http_overload_returns_429(tmp_path):
    fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=1,
                           max_batch=1)
    try:
        n = 8
        replies = [None] * n

        def fire(index: int) -> None:
            with ServeClient(path=fixture.socket_path) as client:
                replies[index] = client.compile(
                    _distinct_request(500 + index).source,
                    ["double:1x32"], include_c=False)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        ok = [r for r in replies if r["http_status"] == 200]
        shed = [r for r in replies if r["http_status"] == 429]
        assert len(ok) + len(shed) == n
        assert ok, "at least the first admitted request must compile"
        assert shed, "a 1-deep queue under an 8-wide burst must shed"
        assert all(r["status"] == "shed" for r in shed)
        assert all("retry_after_s" in r for r in shed)
    finally:
        fixture.close()


# ---------------------------------------------------------------------
# SIGTERM drain through a real subprocess
# ---------------------------------------------------------------------

def test_sigterm_drains_real_daemon(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--socket", socket_path, "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        ready = proc.stdout.readline()
        assert "ready" in ready

        reply = {}

        def fire():
            with ServeClient(path=socket_path) as client:
                reply["cold"] = client.compile(
                    "function y = drainme(x)\ny = x + 41.0;\nend\n",
                    ["double:1x8"], include_c=False)

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.05)  # let the cold compile get in flight
        proc.send_signal(signal.SIGTERM)
        thread.join()
        # The in-flight response was delivered during the drain.
        assert reply["cold"]["status"] == "ok"
        assert proc.wait(timeout=120) == 0
        tail = proc.stdout.read()
        assert "drained" in tail
        assert "Traceback" not in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stdout.close()
