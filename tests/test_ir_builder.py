"""Unit tests for AST-to-IR lowering."""

import numpy as np
import pytest

from repro.errors import UnsupportedFeatureError
from repro.frontend.parser import parse
from repro.ir import nodes as ir
from repro.ir.builder import lower_program
from repro.ir.printer import format_module
from repro.ir.types import ArrayType, I32, ScalarKind, ScalarType
from repro.ir.verifier import verify_module
from repro.semantics.inference import specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType

from helpers import check_program


def lower(source: str, entry: str, args, mode: str = "fused"):
    sprog = specialize_program(parse(source), entry, args)
    module = lower_program(sprog, mode=mode)
    verify_module(module)
    return module


def row(n: int, dtype=DType.DOUBLE, complex_=False) -> MType:
    return MType(dtype, complex_, Shape(1, n))


# ----------------------------------------------------------------------
# Structure of the lowered IR
# ----------------------------------------------------------------------


def test_entry_signature_conventions():
    src = "function [s, y] = f(x)\ns = sum(x);\ny = x .* 2;\nend"
    module = lower(src, "f", [row(6)])
    func = module.entry_function
    # Inputs first.
    assert [p.name for p in func.params] == ["x"]
    assert isinstance(func.params[0].type, ArrayType)
    # Outputs in MATLAB order: scalar then array.
    assert [p.name for p in func.outputs] == ["s", "y"]
    assert isinstance(func.outputs[0].type, ScalarType)
    assert isinstance(func.outputs[1].type, ArrayType)


def test_integer_loop_variable_narrowing():
    src = """
function y = f(x)
y = zeros(1, length(x));
for k = 1:length(x)
    y(k) = x(k);
end
end
"""
    module = lower(src, "f", [row(8)])
    func = module.entry_function
    assert func.local_type("k") == I32


def test_loop_variable_not_narrowed_when_reassigned():
    src = """
function y = f(x)
for k = 1:4
end
k = k + 0.5;
y = k;
end
"""
    module = lower(src, "f", [row(4)])
    func = module.entry_function
    assert func.local_type("k") == ScalarType(ScalarKind.F64)


def test_mutated_array_param_copied_in():
    src = """
function y = f(x)
x(1) = 0;
y = sum(x);
end
"""
    module = lower(src, "f", [row(5)])
    func = module.entry_function
    assert func.params[0].name == "x__in"
    assert isinstance(func.body[0], ir.CopyArray)
    assert func.body[0].src == "x__in" and func.body[0].dst == "x"


def test_untouched_array_param_not_copied():
    src = "function s = f(x)\ns = sum(x);\nend"
    module = lower(src, "f", [row(5)])
    func = module.entry_function
    assert func.params[0].name == "x"
    assert not any(isinstance(s, ir.CopyArray) for s in func.body)


def test_matmul_lowered_as_jki_loops():
    src = "function C = f(A, B)\nC = A * B;\nend"
    module = lower(src, "f",
                   [MType(DType.DOUBLE, False, Shape(4, 4)),
                    MType(DType.DOUBLE, False, Shape(4, 4))])
    text = format_module(module)
    # Triple nesting with a zero-init inner loop.
    assert text.count("for ") >= 4


def test_switch_lowered_to_if_chain():
    src = """
function y = f(k)
switch k
case 1
    y = 10;
case 2
    y = 20;
otherwise
    y = 0;
end
end
"""
    module = lower(src, "f", [MType.double()])
    ifs = [s for s in ir.walk_statements(module.entry_function.body)
           if isinstance(s, ir.If)]
    assert len(ifs) == 2


def test_library_function_becomes_module_function():
    src = "function y = f(x)\ny = conv(x, x);\nend"
    module = lower(src, "f", [row(6)])
    assert any(fn.source_name == "conv" for fn in module.functions)
    calls = [s for s in ir.walk_statements(module.entry_function.body)
             if isinstance(s, ir.Call)]
    assert len(calls) == 1


def test_fprintf_lowered_to_emit():
    src = "function f(x)\nfprintf('v=%f\\n', x);\nend"
    module = lower(src, "f", [MType.double()])
    emits = [s for s in ir.walk_statements(module.entry_function.body)
             if isinstance(s, ir.Emit)]
    assert len(emits) == 1
    assert emits[0].format == "v=%f\n"


def test_fprintf_integer_spec_rewritten():
    src = "function f(x)\nfprintf('%d\\n', x);\nend"
    module = lower(src, "f", [MType.double()])
    emit = next(s for s in ir.walk_statements(module.entry_function.body)
                if isinstance(s, ir.Emit))
    assert "%.0f" in emit.format  # %d on a double would be UB in C


def test_reserved_c_names_are_renamed():
    src = "function y = f(register)\ny = register + 1;\nend"
    module = lower(src, "f", [MType.double()])
    func = module.entry_function
    assert func.params[0].name == "register_"


def test_while_with_array_condition_rejected():
    src = "function y = f(x)\nwhile sum(x) > 0\nx = x - 1;\nend\ny = x;\nend"
    with pytest.raises(UnsupportedFeatureError, match="while"):
        lower(src, "f", [row(3)])


def test_matrix_iteration_rejected():
    src = "function s = f(A)\ns = 0;\nfor c = A\ns = s + c(1);\nend\nend"
    with pytest.raises(UnsupportedFeatureError, match="matrix columns"):
        lower(src, "f", [MType(DType.DOUBLE, False, Shape(2, 3))])


def test_naive_mode_materializes_more_loops():
    src = "function y = f(a, b)\ny = a .* b + a ./ 2;\nend"
    fused = lower(src, "f", [row(8), row(8)], mode="fused")
    naive = lower(src, "f", [row(8), row(8)], mode="naive")

    def loop_count(module):
        return sum(1 for s in ir.walk_statements(module.entry_function.body)
                   if isinstance(s, ir.ForRange))

    assert loop_count(naive) > loop_count(fused)


def test_unknown_mode_rejected():
    sprog = specialize_program(
        parse("function y = f(x)\ny = x;\nend"), "f", [MType.double()])
    with pytest.raises(ValueError, match="mode"):
        lower_program(sprog, mode="bogus")


# ----------------------------------------------------------------------
# Semantics of specific lowering rules (differential)
# ----------------------------------------------------------------------

ARGS_V6 = [MType(DType.DOUBLE, False, Shape(1, 6))]


def test_slice_read_semantics():
    check_program("function y = f(x)\ny = x(2:4);\nend", ARGS_V6,
                  [np.arange(1.0, 7.0).reshape(1, -1)])


def test_slice_read_with_step():
    check_program("function y = f(x)\ny = x(1:2:5);\nend", ARGS_V6,
                  [np.arange(1.0, 7.0).reshape(1, -1)])


def test_slice_write_semantics():
    src = "function y = f(x)\ny = zeros(1, 8);\ny(3:8) = x;\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])


def test_slice_write_scalar_broadcast():
    src = "function y = f(x)\ny = zeros(1, 6);\ny(2:4) = x(1);\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])


def test_colon_write():
    src = "function y = f(x)\ny = zeros(1, 6);\ny(:) = x;\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])


def test_gather_via_index_vector():
    src = "function y = f(x)\nidx = [5 1 3];\ny = x(idx);\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])


def test_two_dimensional_region_copy():
    src = "function B = f(A)\nB = A(1:2, 2:3);\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 4))]
    check_program(src, args, [np.arange(12.0).reshape(3, 4)])


def test_matrix_literal_concat():
    src = "function y = f(a, b)\ny = [a 9 b];\nend"
    args = [MType(DType.DOUBLE, False, Shape(1, 2)),
            MType(DType.DOUBLE, False, Shape(1, 3))]
    check_program(src, args,
                  [np.array([[1.0, 2.0]]), np.array([[3.0, 4.0, 5.0]])])


def test_vertical_concat():
    src = "function y = f(a)\ny = [a; a .* 2];\nend"
    args = [MType(DType.DOUBLE, False, Shape(1, 3))]
    check_program(src, args, [np.array([[1.0, 2.0, 3.0]])])


def test_range_materialization():
    check_program("function y = f()\ny = 2:3:14;\nend", [], [])


def test_fractional_range_loop():
    src = """
function s = f()
s = 0;
for t = 0:0.25:1
    s = s + t;
end
end
"""
    check_program(src, [], [])


def test_countdown_loop():
    src = """
function y = f(x)
y = zeros(1, 6);
j = 1;
for k = 6:-1:1
    y(j) = x(k);
    j = j + 1;
end
end
"""
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])


def test_matrix_transpose_semantics():
    src = "function B = f(A)\nB = A';\nend"
    args = [MType(DType.DOUBLE, False, Shape(2, 3))]
    check_program(src, args, [np.arange(6.0).reshape(2, 3)])


def test_conjugate_transpose_of_complex():
    src = "function B = f(A)\nB = A';\nend"
    args = [MType(DType.DOUBLE, True, Shape(2, 2))]
    data = np.array([[1 + 2j, 3 - 1j], [0 + 1j, 2 + 2j]])
    check_program(src, args, [data])


def test_reshape_preserves_column_order():
    src = "function B = f(A)\nB = reshape(A, 2, 6);\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 4))]
    check_program(src, args, [np.arange(12.0).reshape(3, 4)])


def test_fliplr_flipud():
    src = "function [L, U] = f(A)\nL = fliplr(A);\nU = flipud(A);\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 4))]
    check_program(src, args, [np.arange(12.0).reshape(3, 4)], nargout=2)


def test_eye_and_linspace():
    src = "function [I, L] = f()\nI = eye(3);\nL = linspace(0, 1, 5);\nend"
    check_program(src, [], [], nargout=2)


def test_matrix_reduction_rows():
    src = "function s = f(A)\ns = sum(A);\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 4))]
    check_program(src, args, [np.arange(12.0).reshape(3, 4)])


def test_matrix_reduction_dim2():
    src = "function s = f(A)\ns = sum(A, 2);\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 4))]
    check_program(src, args, [np.arange(12.0).reshape(3, 4)])


def test_minmax_with_index_output():
    src = "function [v, i] = f(x)\n[v, i] = max(x);\nend"
    check_program(src, ARGS_V6,
                  [np.array([[3.0, 9.0, 1.0, 9.0, 2.0, 0.0]])], nargout=2)


def test_min_value_only():
    src = "function v = f(x)\nv = min(x);\nend"
    check_program(src, ARGS_V6,
                  [np.array([[3.0, -9.0, 1.0, 9.0, 2.0, 0.0]])])


def test_mean_and_dot():
    src = "function [m, d] = f(x)\nm = mean(x);\nd = dot(x, x);\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)],
                  nargout=2)


def test_complex_dot_conjugates_first_argument():
    src = "function d = f(a, b)\nd = dot(a, b);\nend"
    args = [MType(DType.DOUBLE, True, Shape(1, 4)),
            MType(DType.DOUBLE, True, Shape(1, 4))]
    rng = np.random.default_rng(5)
    a = rng.standard_normal((1, 4)) + 1j * rng.standard_normal((1, 4))
    b = rng.standard_normal((1, 4)) + 1j * rng.standard_normal((1, 4))
    check_program(src, args, [a, b])


def test_early_return():
    src = """
function y = f(c)
y = 1;
if c > 0
    return
end
y = 2;
end
"""
    check_program(src, [MType.double()], [5.0])
    check_program(src, [MType.double()], [-5.0])


def test_break_and_continue():
    src = """
function s = f(x)
s = 0;
for k = 1:length(x)
    if x(k) < 0
        continue
    end
    if x(k) > 100
        break
    end
    s = s + x(k);
end
end
"""
    check_program(src, ARGS_V6,
                  [np.array([[1.0, -2.0, 3.0, 200.0, 5.0, 6.0]])])


def test_scalar_output_also_input():
    src = "function x = f(x)\nx = x + 1;\nend"
    check_program(src, [MType.double()], [41.0])


def test_array_output_also_input():
    src = "function x = f(x)\nx(1) = 99;\nend"
    check_program(src, ARGS_V6, [np.arange(1.0, 7.0).reshape(1, -1)])
