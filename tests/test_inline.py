"""Unit tests for the cross-function inlining pass."""

import numpy as np

from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir import nodes as ir
from repro.ir.verifier import verify_module

from helpers import check_program


def call_count(module) -> int:
    return sum(1 for f in module.functions
               for s in ir.walk_statements(f.body)
               if isinstance(s, ir.Call))


def test_single_call_site_inlined_and_function_dropped():
    src = """
function y = f(x)
y = helper(x) + 1;
end
function y = helper(x)
y = x * 2;
end
"""
    result = compile_source(src, args=[arg((1, 4))])
    verify_module(result.module)
    assert len(result.module.functions) == 1
    assert call_count(result.module) == 0
    out = result.simulate([np.array([[1.0, 2.0, 3.0, 4.0]])]).outputs[0]
    assert np.allclose(out, [[3.0, 5.0, 7.0, 9.0]])


def test_small_callee_inlined_at_multiple_sites():
    src = """
function y = f(a, b)
y = twice(a) + twice(b);
end
function y = twice(x)
y = x * 2;
end
"""
    result = compile_source(src, args=[arg(), arg()])
    assert call_count(result.module) == 0
    assert result.simulate([3.0, 4.0]).outputs[0] == 14.0


def test_inlining_disabled_by_option():
    src = """
function y = f(x)
y = helper(x);
end
function y = helper(x)
y = x + 1;
end
"""
    result = compile_source(src, args=[arg()],
                            options=CompilerOptions(inline=False))
    assert call_count(result.module) == 1
    assert len(result.module.functions) == 2


def test_inlined_scalar_outputs():
    src = """
function [s, p] = f(a, b)
[s, p] = both(a, b);
end
function [s, p] = both(a, b)
s = a + b;
p = a * b;
end
"""
    result = compile_source(src, args=[arg(), arg()])
    assert call_count(result.module) == 0
    run = result.simulate([3.0, 5.0])
    assert run.outputs == [8.0, 15.0]


def test_inlined_mutating_callee_keeps_value_semantics():
    # The callee mutates its parameter; the caller's array must not
    # change (MATLAB value semantics, preserved via the copy-in local).
    src = """
function [y, keepx] = f(x)
y = stomp(x);
keepx = x(1);
end
function x = stomp(x)
x(1) = 99;
end
"""
    result = compile_source(src, args=[arg((1, 3))])
    verify_module(result.module)
    run = result.simulate([np.array([[1.0, 2.0, 3.0]])])
    assert run.outputs[0][0, 0] == 99.0
    assert run.outputs[1] == 1.0


def test_callee_with_early_return_not_inlined():
    src = """
function y = f(x)
y = guarded(x);
end
function y = guarded(x)
y = 0;
if x < 0
    return
end
y = x;
end
"""
    result = compile_source(src, args=[arg()])
    assert call_count(result.module) == 1  # early return blocks inlining
    assert result.simulate([-3.0]).outputs[0] == 0.0
    assert result.simulate([3.0]).outputs[0] == 3.0


def test_chained_inlining_through_levels():
    src = """
function y = f(x)
y = outer(x);
end
function y = outer(x)
y = inner(x) + 1;
end
function y = inner(x)
y = x * 3;
end
"""
    result = compile_source(src, args=[arg()])
    assert len(result.module.functions) == 1
    assert result.simulate([2.0]).outputs[0] == 7.0


def test_inlined_library_kernel_still_correct():
    src = "function y = f(x)\ny = conv(x, x);\nend"
    x = np.random.default_rng(3).standard_normal((1, 12))
    check_program(src, [arg((1, 12))], [x], with_gcc=True)


def test_name_collisions_between_caller_and_callee():
    # Both functions use 'acc' and 'k'; inlining must keep them apart.
    src = """
function acc = f(x)
acc = 0;
for k = 1:length(x)
    acc = acc + part(x(k));
end
end
function acc = part(v)
acc = 0;
for k = 1:3
    acc = acc + v / 3;
end
end
"""
    x = np.array([[3.0, 6.0, 9.0]])
    check_program(src, [arg((1, 3))], [x], tol=1e-12)
