"""User-defined functions: specialization, diagnostics, 5G kernels.

Three groups of guards for the user-function tier:

* the four 5G/DSP kernels that exercise subfunctions and while loops
  (channel_est, qr_gs, inv3x3, bf_weights) agree across the golden
  interpreter, both simulator backends, and — where gcc is present —
  the native tier;
* malformed programs are rejected with diagnostics that carry source
  positions: recursion, arity mismatch, unknown functions;
* behavioral pins: per-call-site specialization mangles distinct
  signatures apart, nargout=1 calls of multi-return functions keep
  only the first value, user functions shadow builtins, and the
  interpreter's call-depth limit fires with a sourced message.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from helpers import (assert_outputs_close, check_program, compile_both,
                     golden_outputs, requires_gcc)
from repro.compiler import arg, compile_source
from repro.errors import (InterpreterError, SemanticError,
                          UnsupportedFeatureError)
from repro.mlab.interp import MatlabInterpreter

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
from workloads import workload_by_name  # noqa: E402

NEW_KERNELS = ["channel_est", "qr_gs", "inv3x3", "bf_weights"]


# ---------------------------------------------------------------------------
# 5G/DSP kernels through every tier


@pytest.mark.parametrize("kernel", NEW_KERNELS)
def test_kernel_agrees_interpreter_and_simulators(kernel):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=11)
    check_program(workload.source, workload.arg_types, inputs,
                  entry=workload.entry, tol=workload.tolerance)


@requires_gcc
@pytest.mark.parametrize("kernel", NEW_KERNELS)
def test_kernel_agrees_native(kernel):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=11)
    golden = workload.golden(inputs)
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    native = result.simulate(list(inputs), backend="native")
    assert_outputs_close(native.outputs[0], golden,
                         max(workload.tolerance, 1e-7),
                         f"{kernel} native output")


def test_kernel_functions_emit_strict_ansi_c():
    """Subfunctions survive to the C level (or inline away) without
    leaking MATLAB names: the generated unit compiles standalone."""
    workload = workload_by_name("qr_gs")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    source = result.c_source()
    assert "col_dot" in source or "inl" in source
    assert "//" not in source.split("/*", 1)[0]


# ---------------------------------------------------------------------------
# Sourced diagnostics


def test_compiler_rejects_recursion_with_position():
    src = """function y = f(x)
y = g(x);
end

function r = g(v)
r = g(v) + 1;
end
"""
    with pytest.raises(UnsupportedFeatureError,
                       match=r"<string>:5:1: recursive call to 'g'"):
        compile_source(src, args=[arg((1, 3))], entry="f")


def test_compiler_rejects_mutual_recursion():
    src = """function y = f(x)
y = g(x);
end

function r = g(v)
r = h(v);
end

function r = h(v)
r = g(v) .* 2;
end
"""
    with pytest.raises(UnsupportedFeatureError, match="recursive call"):
        compile_source(src, args=[arg((1, 3))], entry="f")


def test_compiler_rejects_arity_mismatch_with_position():
    src = """function y = f(x)
y = g(x);
end

function r = g(a, b)
r = a + b;
end
"""
    with pytest.raises(SemanticError,
                       match=r"<string>:5:1: function 'g' expects 2 "
                             r"argument\(s\), got 1"):
        compile_source(src, args=[arg((1, 3))], entry="f")


def test_compiler_unknown_call_is_sourced():
    src = """function y = f(x)
y = missing_fn(x);
end

function r = helper(v)
r = v;
end
"""
    with pytest.raises(SemanticError,
                       match=r"<string>:2:5: undefined variable or "
                             r"function 'missing_fn'"):
        compile_source(src, args=[arg((1, 3))], entry="f")


def test_unknown_entry_lists_defined_functions():
    src = """function y = f(x)
y = x;
end

function r = helper(v)
r = v;
end
"""
    with pytest.raises(SemanticError,
                       match=r"unknown function 'nope'.*defined "
                             r"functions: f, helper"):
        compile_source(src, args=[arg((1, 3))], entry="nope")


def test_interpreter_call_depth_limit_is_sourced():
    src = """function y = f(x)
y = f(x) + 1;
end
"""
    with pytest.raises(InterpreterError,
                       match=r"<string>:1: call depth limit \(64\) "
                             r"exceeded in 'f'"):
        golden_outputs(src, "f", [np.ones((1, 3))])


# ---------------------------------------------------------------------------
# Behavioral pins


def test_specialization_mangles_signatures_apart():
    src = """function y = f(a, b)
u = scale(a);
v = scale(b);
y = sum(u) + v;
end

function r = scale(p)
r = p .* 2;
end
"""
    optimized, _ = compile_both(
        src, [arg((1, 4)), arg((1, 1))], entry="f")
    keys = sorted(optimized.sprog.functions)
    assert "scale$double_1x4" in keys
    assert "scale$double_1x1" in keys
    # The entry itself is specialized under its own signature.
    assert any(key.startswith("f$") for key in keys)


def test_nargout_one_takes_first_return():
    src = """function y = f(x)
v = two(x);
y = sum(v);
end

function [dbl, neg] = two(a)
dbl = a .* 2;
neg = -a;
end
"""
    x = np.array([[1.0, 2.0, 3.0]])
    check_program(src, [arg((1, 3))], [x], entry="f")
    outputs = golden_outputs(src, "f", [x])
    assert np.asarray(outputs[0]).item() == 12.0


def test_multi_return_order_and_tilde():
    src = """function [s, d] = f(x)
[s, d] = sumdiff(x, x .* 0.5);
end

function [a, b] = sumdiff(u, v)
a = sum(u + v);
b = sum(u - v);
end
"""
    x = np.array([[2.0, 4.0]])
    _, outputs = check_program(src, [arg((1, 2))], [x], entry="f",
                               nargout=2)
    assert np.asarray(outputs[0]).item() == 9.0
    assert np.asarray(outputs[1]).item() == 3.0


def test_user_function_shadows_builtin_in_both_tiers():
    src = """function y = f(x)
y = sum(x);
end

function s = sum(v)
s = v(1) .* 100;
end
"""
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    _, outputs = check_program(src, [arg((1, 4))], [x], entry="f")
    assert np.asarray(outputs[0]).item() == 100.0
    interp_out = golden_outputs(src, "f", [x])
    assert np.asarray(interp_out[0]).item() == 100.0


def test_while_loop_with_length_bound_matches():
    src = """function s = f(v)
s = 0;
k = 1;
while k <= length(v)
  s = s + v(k) .* k;
  k = k + 1;
end
end
"""
    v = np.array([[1.0, -2.0, 0.5, 4.0]])
    _, outputs = check_program(src, [arg((1, 4))], [v], entry="f")
    expected = sum(v[0, k] * (k + 1) for k in range(4))
    assert np.asarray(outputs[0]).item() == pytest.approx(expected)


def test_interpreter_multi_return_nargout_clipping():
    """nargout between 1 and the declared return count keeps a prefix."""
    src = """function [a, b, c] = f(x)
a = x + 1;
b = x + 2;
c = x + 3;
end
"""
    interp = MatlabInterpreter(src)
    two = interp.call("f", [5.0], nargout=2)
    assert len(two) == 2
    assert np.asarray(two[0]).item() == 6.0
    assert np.asarray(two[1]).item() == 7.0
