"""Content-addressed compilation cache + memoization tests.

Covers the cache-key construction (hits on identical inputs,
invalidation on every input that can change the produced module), the
in-memory LRU, the on-disk pickle layer, and the satellite
memoizations: ``load_processor``, ``generate_header`` and
``CompilationResult.instruction_mix``.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro import cache
from repro.asip.header_gen import generate_header
from repro.asip.isa_library import load_processor
from repro.compiler import CompilerOptions, arg, compile_source

SRC = "function y = f(x, h)\ny = x(1) * h(1) + x(2) * h(2);\nend"
ARGS = [arg((1, 4)), arg((1, 4))]


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test gets a private process-wide cache with no disk layer."""
    cache.configure(cache_dir=None)
    yield
    cache.configure(cache_dir=None)


def _key(source=SRC, args=ARGS, entry=None, processor="vliw_simd_dsp",
         options=None, filename="<string>"):
    return cache.cache_key(source, args, entry,
                           load_processor(processor),
                           options or CompilerOptions(), filename)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------


def test_key_stable_for_identical_inputs():
    assert _key() == _key()


def test_key_changes_with_source():
    assert _key() != _key(source=SRC.replace("+", "-"))


def test_key_changes_with_arg_signature():
    assert _key() != _key(args=[arg((1, 8)), arg((1, 4))])
    assert _key() != _key(args=[arg((1, 4), dtype="single"), arg((1, 4))])
    assert _key() != _key(args=[arg((1, 4), complex=True), arg((1, 4))])
    assert _key() != _key(args=[arg((1, 4), value=2.0), arg((1, 4))])


def test_key_changes_with_entry_and_filename():
    assert _key() != _key(entry="f")
    assert _key() != _key(filename="f.m")


def test_key_changes_with_options():
    assert _key() != _key(options=CompilerOptions.baseline())
    assert _key() != _key(options=CompilerOptions(simd=False))


def test_key_changes_with_processor():
    assert _key() != _key(processor="generic_scalar_dsp")


def test_key_changes_with_processor_cost_table():
    proc = load_processor("vliw_simd_dsp")
    tweaked = dataclasses.replace(proc)
    tweaked.costs = dataclasses.replace(proc.costs, mul=proc.costs.mul + 1)
    options = CompilerOptions()
    assert cache.cache_key(SRC, ARGS, None, proc, options) != \
        cache.cache_key(SRC, ARGS, None, tweaked, options)


# ----------------------------------------------------------------------
# compile_source integration
# ----------------------------------------------------------------------


def test_compile_source_hits_cache():
    first = compile_source(SRC, args=ARGS)
    before = cache.stats()
    second = compile_source(SRC, args=ARGS)
    after = cache.stats()
    assert second is first
    assert after["hits"] == before["hits"] + 1


def test_compile_source_use_cache_false_bypasses():
    first = compile_source(SRC, args=ARGS)
    second = compile_source(SRC, args=ARGS, use_cache=False)
    assert second is not first
    assert len(cache.default_cache()) == 1


def test_cached_result_still_simulates():
    first = compile_source(SRC, args=ARGS)
    second = compile_source(SRC, args=ARGS)
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    run = second.simulate([x, h])
    assert run.outputs[0] == pytest.approx(1.0)
    assert first.simulate([x, h], backend="reference").report.total == \
        run.report.total


def test_different_options_compile_separately():
    optimized = compile_source(SRC, args=ARGS)
    baseline = compile_source(SRC, args=ARGS,
                              options=CompilerOptions.baseline())
    assert baseline is not optimized
    assert len(cache.default_cache()) == 2


# ----------------------------------------------------------------------
# LRU + disk layer
# ----------------------------------------------------------------------


def test_lru_eviction():
    store = cache.CompilationCache(maxsize=2)
    store.put("a", "ra")
    store.put("b", "rb")
    store.get("a")                     # refresh 'a'
    store.put("c", "rc")               # evicts 'b'
    assert store.get("a") == "ra"
    assert store.get("b") is None
    assert store.get("c") == "rc"
    assert len(store) == 2


def test_disk_layer_round_trip(tmp_path):
    cache.configure(cache_dir=tmp_path)
    result = compile_source(SRC, args=ARGS)
    key = _key()
    assert (tmp_path / key[:2] / f"{key}.pkl").is_file()

    # A fresh process-wide cache (cold memory) must hit the disk layer
    # and the revived result must still run on both backends.
    store = cache.configure(cache_dir=tmp_path)
    revived = compile_source(SRC, args=ARGS)
    assert revived is not result
    assert store.stats()["disk_hits"] == 1
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    comp = revived.simulate([x, h], backend="compiled")
    ref = revived.simulate([x, h], backend="reference")
    assert comp.outputs[0] == ref.outputs[0]
    assert comp.report.total == ref.report.total


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    store = cache.configure(cache_dir=tmp_path)
    key = _key()
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert store.get(key) is None
    assert not path.exists()           # corrupt entry dropped
    compile_source(SRC, args=ARGS)     # and recompilation repopulates it
    assert path.is_file()


def test_schema_skewed_envelope_is_counted_miss(tmp_path):
    # An entry written under a different CACHE_SCHEMA unpickles cleanly
    # but must never be served: it reads as a *counted* miss and the
    # stale file is dropped so it cannot keep skewing.
    store = cache.CompilationCache(cache_dir=tmp_path)
    key = "a" * 64
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps(
        {"schema": "repro-cache-v1", "result": "stale"}))
    assert store.get(key) is None
    assert not path.exists()
    assert store.stats()["disk_schema_skews"] == 1
    assert store.stats()["disk_read_errors"] == 0


def test_pre_envelope_raw_pickle_is_schema_skew(tmp_path):
    # Entries from before the envelope existed are bare pickled results;
    # they load fine, so only the schema check can reject them.
    store = cache.CompilationCache(cache_dir=tmp_path)
    key = "b" * 64
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"tag": 1}))  # dict, but no schema
    assert store.get(key) is None
    assert not path.exists()
    assert store.stats()["disk_schema_skews"] == 1


def test_cache_key_salted_by_schema(monkeypatch):
    # Bumping CACHE_SCHEMA must move every key, so a new revision
    # addresses a disjoint key space from older on-disk entries.
    before = _key()
    monkeypatch.setattr(cache, "CACHE_SCHEMA", "repro-cache-v999")
    assert _key() != before


def test_peek_is_memory_only_and_stat_free(tmp_path):
    store = cache.CompilationCache(cache_dir=tmp_path)
    key = "c" * 64
    store._disk_put(key, {"tag": 7})
    baseline = store.stats()
    # peek never touches the disk layer and never counts hit/miss.
    assert store.peek(key) is None
    assert store.stats() == baseline
    store._remember(key, {"tag": 7})
    assert store.peek(key) == {"tag": 7}
    after = store.stats()
    assert after["hits"] == baseline["hits"]
    assert after["misses"] == baseline["misses"]


def test_configure_swap_is_atomic_under_concurrent_readers(tmp_path):
    # Hammer configure() from one thread while others resolve and use
    # the process-wide cache: readers must only ever observe a fully
    # constructed cache (a partially initialized one would raise).
    import threading

    stop = threading.Event()
    errors = []

    def reconfigure():
        try:
            while not stop.is_set():
                cache.configure(maxsize=8, cache_dir=tmp_path)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def reader(tag):
        try:
            for i in range(200):
                store = cache.default_cache()
                key = ("%02d" % (i % 10)) + "b" * 62
                if store.get(key) is None:
                    store._remember(key, {"tag": tag})
                len(store)
                store.stats()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    flipper = threading.Thread(target=reconfigure)
    readers = [threading.Thread(target=reader, args=(t,))
               for t in range(4)]
    flipper.start()
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join()
    stop.set()
    flipper.join()
    assert errors == []


def test_pickled_result_drops_runtime_state():
    result = compile_source(SRC, args=ARGS)
    result.compiled_program()
    result.instruction_mix([np.ones((1, 4)), np.ones((1, 4))])
    revived = pickle.loads(pickle.dumps(result))
    assert not hasattr(revived, "_compiled_program")
    assert not hasattr(revived, "_last_sim_result")


# ----------------------------------------------------------------------
# Satellite memoizations
# ----------------------------------------------------------------------


def test_load_processor_is_memoized():
    assert load_processor("vliw_simd_dsp") is load_processor("vliw_simd_dsp")


def test_processor_fingerprint_semantics():
    proc = load_processor("vliw_simd_dsp")
    assert proc.fingerprint() == proc.fingerprint()
    assert proc == dataclasses.replace(proc)
    assert hash(proc) == hash(dataclasses.replace(proc))
    other = load_processor("generic_scalar_dsp")
    assert proc.fingerprint() != other.fingerprint()
    assert proc != other


def test_generate_header_is_memoized():
    proc = load_processor("vliw_simd_dsp")
    assert generate_header(proc) is generate_header(proc)


def test_instruction_mix_reuses_last_simulation():
    result = compile_source(SRC, args=ARGS)
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    run = result.simulate([x, h])
    mix = result.instruction_mix([x, h])
    assert mix is run.report.instruction_counts   # no re-simulation
    run2 = result.simulate([x * 2, h])            # different values
    assert result.instruction_mix([x * 2, h]) is \
        run2.report.instruction_counts


def test_instruction_mix_keyed_per_args_not_just_last():
    """Regression: the reuse store is keyed by argument signature, so an
    interleaved simulation of other inputs must not force a
    re-simulation of earlier ones."""
    result = compile_source(SRC, args=ARGS)
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    run_a = result.simulate([x, h])
    run_b = result.simulate([x * 2, h])           # different inputs
    # Both runs stay addressable; neither lookup re-simulates.
    assert result.instruction_mix([x, h]) is \
        run_a.report.instruction_counts
    assert result.instruction_mix([x * 2, h]) is \
        run_b.report.instruction_counts


def test_instruction_mix_keyed_per_backend():
    """A run recorded by one backend must not satisfy a mix query for
    the other: the key includes the backend."""
    result = compile_source(SRC, args=ARGS)
    x = np.array([[1.0, 2.0, 3.0, 4.0]])
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    ref_run = result.simulate([x, h], backend="reference")
    mix = result.instruction_mix([x, h], backend="compiled")
    assert mix is not ref_run.report.instruction_counts
    assert mix == ref_run.report.instruction_counts  # same semantics
    # And the reference-backend entry is still there untouched.
    assert result.instruction_mix([x, h], backend="reference") is \
        ref_run.report.instruction_counts


def test_sim_run_store_is_bounded():
    from repro.compiler import _SIM_RUN_LIMIT

    result = compile_source(SRC, args=ARGS)
    h = np.array([[0.5, 0.25, 0.0, 0.0]])
    for i in range(_SIM_RUN_LIMIT + 3):
        result.simulate([np.full((1, 4), float(i)), h])
    assert len(result._sim_runs) == _SIM_RUN_LIMIT


# ----------------------------------------------------------------------
# Cache-hit provenance
# ----------------------------------------------------------------------


def test_cache_hits_counter_marks_provenance():
    first = compile_source(SRC, args=ARGS)
    assert first.cache_hits == 0
    second = compile_source(SRC, args=ARGS)
    third = compile_source(SRC, args=ARGS)
    assert second is first and third is first
    assert first.cache_hits == 2
    # The original stage timings survive for --profile provenance.
    assert "total" in first.stage_times


def test_disk_revived_result_defaults_new_fields(tmp_path):
    cache.configure(cache_dir=tmp_path)
    compile_source(SRC, args=ARGS)
    cache.configure(cache_dir=tmp_path)   # cold memory, warm disk
    revived = compile_source(SRC, args=ARGS)
    assert revived.cache_hits == 1        # counted on the disk hit
    assert isinstance(revived.remarks, list)


# ----------------------------------------------------------------------
# Multi-process safety of the disk layer
#
# Regression for the partial-write hazard: before the atomic
# mkstemp + os.replace protocol, two processes writing the same key
# (or a reader overlapping a writer) could observe a half-written
# pickle.  These tests interleave real processes over one cache
# directory and demand that every read is either a miss or a complete,
# valid entry — never garbage.
# ----------------------------------------------------------------------


def _payload(tag: int) -> dict:
    # Big enough that a non-atomic write would be observably partial.
    return {"tag": tag, "blob": ("%06d" % tag) * 40000}


def _writer_proc(cache_dir, key, tag, start, rounds):
    from repro.cache import CompilationCache

    private = CompilationCache(cache_dir=cache_dir)
    start.wait()
    for _ in range(rounds):
        private._disk_put(key, _payload(tag))


def test_interleaved_reader_writer_processes_never_see_partial(tmp_path):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    key = "f" * 64
    start = ctx.Event()
    writers = [ctx.Process(target=_writer_proc,
                           args=(str(tmp_path), key, tag, start, 25))
               for tag in range(3)]
    for proc in writers:
        proc.start()

    reader = cache.CompilationCache(cache_dir=tmp_path)
    start.set()
    observed = 0
    while any(proc.is_alive() for proc in writers):
        entry = reader._disk_get(key)
        if entry is not None:
            observed += 1
            # A complete entry from exactly one writer; a torn write
            # would either fail to unpickle (counted as read error)
            # or mix tags and blob.
            assert entry["blob"] == ("%06d" % entry["tag"]) * 40000
    for proc in writers:
        proc.join()
        assert proc.exitcode == 0
    assert observed > 0, "reader never overlapped a published entry"
    assert reader.stats()["disk_read_errors"] == 0


def test_concurrent_writers_leave_no_temp_files(tmp_path):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    key = "e" * 64
    start = ctx.Event()
    writers = [ctx.Process(target=_writer_proc,
                           args=(str(tmp_path), key, tag, start, 10))
               for tag in range(3)]
    for proc in writers:
        proc.start()
    start.set()
    for proc in writers:
        proc.join()
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
    assert leftovers == []
    # The published entry is one writer's complete payload.
    final = cache.CompilationCache(cache_dir=tmp_path)._disk_get(key)
    assert final["blob"] == ("%06d" % final["tag"]) * 40000


def test_disk_write_race_is_counted(tmp_path):
    private = cache.CompilationCache(cache_dir=tmp_path)
    key = "d" * 64
    private._disk_put(key, _payload(1))
    assert private.stats()["disk_write_races"] == 0
    private._disk_put(key, _payload(2))   # key already published
    stats = private.stats()
    assert stats["disk_writes"] == 2
    assert stats["disk_write_races"] == 1


def test_stats_exposes_contention_counters():
    expected = {"hits", "misses", "disk_hits", "evictions",
                "disk_reads", "disk_writes", "disk_write_races",
                "disk_read_errors", "disk_write_errors",
                "disk_schema_skews", "size"}
    assert expected <= set(cache.stats())


def test_thread_safety_smoke(tmp_path):
    import threading

    private = cache.CompilationCache(maxsize=8, cache_dir=tmp_path)
    errors = []

    def worker(tag: int) -> None:
        try:
            for i in range(30):
                key = ("%02d" % (i % 12)) + "a" * 62
                if private.get(key) is None:
                    private.put(key, _payload(tag))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    stats = private.stats()
    assert stats["hits"] + stats["misses"] == 6 * 30
    assert stats["size"] <= 8
    assert stats["disk_read_errors"] == 0
