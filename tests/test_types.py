"""Unit tests for the MATLAB type lattice."""

from repro.semantics.shapes import Shape
from repro.semantics.types import (
    DType,
    MType,
    dtype_from_name,
    promote_binary,
)


def test_dtype_rank_join():
    assert DType.INT8.join(DType.INT32) is DType.INT32
    assert DType.LOGICAL.join(DType.DOUBLE) is DType.DOUBLE
    assert DType.DOUBLE.join(DType.DOUBLE) is DType.DOUBLE


def test_single_beats_double():
    # MATLAB rule: mixed single/double arithmetic stays single.
    assert DType.SINGLE.join(DType.DOUBLE) is DType.SINGLE
    assert DType.DOUBLE.join(DType.SINGLE) is DType.SINGLE


def test_dtype_predicates():
    assert DType.INT16.is_integer and not DType.INT16.is_float
    assert DType.SINGLE.is_float and not DType.SINGLE.is_integer
    assert not DType.LOGICAL.is_integer


def test_dtype_from_name():
    assert dtype_from_name("double") is DType.DOUBLE
    assert dtype_from_name("int16") is DType.INT16
    assert dtype_from_name("bogus") is None


def test_scalar_constructors():
    t = MType.double(3.0)
    assert t.is_scalar and t.value == 3.0
    assert MType.logical(True).dtype is DType.LOGICAL


def test_with_shape_drops_value():
    t = MType.double(3.0).with_shape(Shape(2, 2))
    assert t.value is None
    assert t.shape == Shape(2, 2)


def test_element_type():
    t = MType(DType.SINGLE, True, Shape(4, 4))
    elem = t.element_type()
    assert elem.is_scalar and elem.dtype is DType.SINGLE and elem.is_complex


def test_as_real_as_complex():
    t = MType.double()
    assert t.as_complex().is_complex
    assert t.as_complex().as_real().is_complex is False


def test_join_preserves_equal_values():
    a = MType.double(5.0)
    b = MType.double(5.0)
    assert a.join(b).value == 5.0


def test_join_drops_different_values():
    assert MType.double(5.0).join(MType.double(6.0)).value is None


def test_join_shapes_and_complexity():
    a = MType(DType.DOUBLE, False, Shape(1, 4))
    b = MType(DType.DOUBLE, True, Shape(1, 4))
    joined = a.join(b)
    assert joined.is_complex
    assert joined.shape == Shape(1, 4)


def test_join_conflicting_shapes():
    a = MType(DType.DOUBLE, False, Shape(1, 4))
    b = MType(DType.DOUBLE, False, Shape(1, 5))
    assert a.join(b).shape == Shape(1, None)


def test_promote_binary_logical_becomes_double():
    dtype, is_complex = promote_binary(MType.logical(), MType.logical())
    assert dtype is DType.DOUBLE and not is_complex


def test_promote_binary_complex_contagion():
    dtype, is_complex = promote_binary(
        MType.double(), MType.scalar(DType.DOUBLE, is_complex=True))
    assert is_complex


def test_promote_binary_single_wins():
    dtype, _ = promote_binary(MType.scalar(DType.SINGLE), MType.double())
    assert dtype is DType.SINGLE


def test_describe_readable():
    t = MType(DType.SINGLE, True, Shape(2, 3))
    text = t.describe()
    assert "complex" in text and "single" in text and "[2x3]" in text
    assert MType.double(2.0).describe() == "double (= 2.0)"


def test_without_value():
    assert MType.double(2.0).without_value().value is None
    plain = MType.double()
    assert plain.without_value() is plain
