"""Edge-shape tests for the MATLAB-source compiler-library kernels.

fft/ifft/conv/filter carry orientation-generic branches resolved by
static branch pruning; these tests exercise both orientations and the
boundary sizes.
"""

import numpy as np
import pytest
from scipy.signal import lfilter

from repro.compiler import arg, compile_source
from repro.errors import SemanticError

from helpers import check_program

RNG = np.random.default_rng(5)


@pytest.mark.parametrize("n", [2, 4, 8, 64])
def test_fft_row_input(n):
    src = "function X = f(x)\nX = fft(x);\nend"
    x = RNG.standard_normal((1, n))
    result = compile_source(src, args=[arg((1, n))])
    out = result.simulate([x]).outputs[0]
    assert out.shape == (1, n)
    assert np.allclose(out.ravel(), np.fft.fft(x.ravel()), atol=1e-9)


def test_fft_column_input_keeps_orientation():
    src = "function X = f(x)\nX = fft(x);\nend"
    x = RNG.standard_normal((16, 1))
    result = compile_source(src, args=[arg((16, 1))])
    out = result.simulate([x]).outputs[0]
    assert out.shape == (16, 1)
    assert np.allclose(out.ravel(), np.fft.fft(x.ravel()), atol=1e-9)


def test_fft_of_complex_input():
    src = "function X = f(z)\nX = fft(z);\nend"
    z = RNG.standard_normal((1, 8)) + 1j * RNG.standard_normal((1, 8))
    result = compile_source(src, args=[arg((1, 8), complex=True)])
    out = result.simulate([z]).outputs[0]
    assert np.allclose(out.ravel(), np.fft.fft(z.ravel()), atol=1e-9)


def test_fft_non_power_of_two_rejected_with_message():
    src = "function X = f(x)\nX = fft(x);\nend"
    with pytest.raises(SemanticError, match="power of two"):
        compile_source(src, args=[arg((1, 20))])


def test_ifft_scaling():
    src = "function y = f(z)\ny = ifft(z);\nend"
    z = RNG.standard_normal((1, 16)) + 1j * RNG.standard_normal((1, 16))
    result = compile_source(src, args=[arg((1, 16), complex=True)])
    out = result.simulate([z]).outputs[0]
    assert np.allclose(out.ravel(), np.fft.ifft(z.ravel()), atol=1e-9)


@pytest.mark.parametrize("nx,nh", [(1, 1), (5, 1), (1, 5), (8, 3),
                                   (3, 8), (16, 16)])
def test_conv_sizes(nx, nh):
    src = "function y = f(x, h)\ny = conv(x, h);\nend"
    x, h = RNG.standard_normal((1, nx)), RNG.standard_normal((1, nh))
    check_program(src, [arg((1, nx)), arg((1, nh))], [x, h], tol=1e-10)


def test_conv_column_inputs_give_column():
    src = "function y = f(x, h)\ny = conv(x, h);\nend"
    x = RNG.standard_normal((6, 1))
    h = RNG.standard_normal((3, 1))
    result = compile_source(src, args=[arg((6, 1)), arg((3, 1))])
    out = result.simulate([x, h]).outputs[0]
    assert out.shape == (8, 1)
    assert np.allclose(out.ravel(), np.convolve(x.ravel(), h.ravel()))


def test_conv_mixed_orientation_gives_row():
    src = "function y = f(x, h)\ny = conv(x, h);\nend"
    x = RNG.standard_normal((6, 1))
    h = RNG.standard_normal((1, 3))
    result = compile_source(src, args=[arg((6, 1)), arg((1, 3))])
    out = result.simulate([x, h]).outputs[0]
    assert out.shape == (1, 8)


def test_conv_complex_real_mix():
    src = "function y = f(x, h)\ny = conv(x, h);\nend"
    x = RNG.standard_normal((1, 6)) + 1j * RNG.standard_normal((1, 6))
    h = RNG.standard_normal((1, 3))
    check_program(src, [arg((1, 6), complex=True), arg((1, 3))], [x, h],
                  tol=1e-10)


def test_filter_fir_mode():
    src = "function y = f(b, x)\ny = filter(b, 1, x);\nend"
    b = np.array([[0.25, 0.5, 0.25]])
    x = RNG.standard_normal((1, 30))
    result = compile_source(src, args=[arg((1, 3)), arg((1, 30))])
    out = result.simulate([b, x]).outputs[0]
    assert np.allclose(out.ravel(), lfilter(b.ravel(), [1.0], x.ravel()))


def test_filter_iir_against_scipy():
    src = "function y = f(b, a, x)\ny = filter(b, a, x);\nend"
    b = np.array([[0.0675, 0.1349, 0.0675]])
    a = np.array([[1.0, -1.1430, 0.4128]])
    x = RNG.standard_normal((1, 50))
    result = compile_source(src, args=[arg((1, 3)), arg((1, 3)),
                                       arg((1, 50))])
    out = result.simulate([b, a, x]).outputs[0]
    assert np.allclose(out.ravel(),
                       lfilter(b.ravel(), a.ravel(), x.ravel()),
                       atol=1e-9)


def test_filter_column_input():
    src = "function y = f(b, a, x)\ny = filter(b, a, x);\nend"
    b = np.array([[0.5, 0.5]])
    a = np.array([[1.0]])
    x = RNG.standard_normal((20, 1))
    result = compile_source(src, args=[arg((1, 2)), arg((1, 1)),
                                       arg((20, 1))])
    out = result.simulate([b, a, x]).outputs[0]
    assert out.shape == (20, 1)
    assert np.allclose(out.ravel(), lfilter([0.5, 0.5], [1.0], x.ravel()))


def test_filter_normalizes_by_a1():
    src = "function y = f(b, a, x)\ny = filter(b, a, x);\nend"
    b = np.array([[2.0]])
    a = np.array([[2.0]])
    x = RNG.standard_normal((1, 10))
    check_program(src, [arg((1, 1)), arg((1, 1)), arg((1, 10))],
                  [b, a, x], tol=1e-12)


def test_library_specializations_shared_across_sites():
    # Two fft calls on equal shapes must share one specialization.
    from repro.compiler import CompilerOptions
    src = """
function y = f(a, b)
y = real(fft(a)) + imag(fft(b));
end
"""
    result = compile_source(src, args=[arg((1, 8)), arg((1, 8))],
                            options=CompilerOptions(inline=False))
    fft_funcs = [fn for fn in result.module.functions
                 if fn.source_name == "fft"]
    assert len(fft_funcs) == 1
