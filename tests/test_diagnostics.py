"""Unit tests for source bookkeeping and the diagnostics engine."""

import pytest

from repro.errors import CompileError
from repro.frontend.diagnostics import DiagnosticEngine, Severity
from repro.frontend.source import SourceFile, Span


SAMPLE = "function y = f(x)\ny = x + 1;\nend\n"


def test_line_col_mapping():
    source = SourceFile(SAMPLE, "sample.m")
    assert source.line_col(0) == (1, 1)
    assert source.line_col(18) == (2, 1)  # 'y' of line 2
    assert source.line_col(len(SAMPLE) - 1) == (3, 4)


def test_line_col_clamps_out_of_range():
    source = SourceFile("ab", "t.m")
    assert source.line_col(99) == (1, 3)
    assert source.line_col(-5) == (1, 1)


def test_line_text():
    source = SourceFile(SAMPLE)
    assert source.line_text(1) == "function y = f(x)"
    assert source.line_text(2) == "y = x + 1;"
    assert source.line_text(99) == ""


def test_excerpt_has_caret():
    source = SourceFile(SAMPLE, "sample.m")
    span = Span(18, 19, "sample.m")  # the 'y' on line 2
    excerpt = source.excerpt(span)
    lines = excerpt.split("\n")
    assert lines[0] == "y = x + 1;"
    assert lines[1].startswith("^")


def test_excerpt_caret_width_matches_span():
    source = SourceFile("abc def", "t.m")
    excerpt = source.excerpt(Span(4, 7, "t.m"))
    assert excerpt.split("\n")[1] == "    ^^^"


def test_span_merge():
    a = Span(5, 10, "t.m")
    b = Span(2, 7, "t.m")
    assert a.merge(b) == Span(2, 10, "t.m")


def test_engine_fatal_error_raises():
    engine = DiagnosticEngine(SourceFile(SAMPLE, "s.m"))
    with pytest.raises(CompileError, match=r"s\.m:2:\d+.*boom"):
        engine.error("boom", Span(18, 19, "s.m"))


def test_engine_collecting_mode():
    engine = DiagnosticEngine(SourceFile(SAMPLE), fatal_errors=False)
    engine.error("first", Span(0, 1))
    engine.warning("watch out", Span(18, 19))
    engine.note("fyi", Span(18, 19))
    assert engine.error_count == 1
    assert engine.warning_count == 1
    rendered = engine.render_all()
    assert "error: first" in rendered
    assert "warning: watch out" in rendered
    assert "note: fyi" in rendered


def test_diagnostic_render_without_source():
    engine = DiagnosticEngine(None, fatal_errors=False)
    engine.warning("plain", Span(0, 1, "file.m"))
    assert engine.diagnostics[0].render() == "file.m: warning: plain"


def test_severity_values():
    assert Severity.ERROR.value == "error"
    assert Severity.WARNING.value == "warning"
