"""Reconnect-edge tier for :class:`repro.serve.ServeClient`.

The client promises exactly one transparent reconnect: a daemon
restart between two calls looks like one slow call, a daemon that is
really gone raises :class:`ServeUnavailable` on the second consecutive
transport failure, and ``wait_ready`` bounds its polling by the given
timeout.  These edges only show up across a real socket, so each test
drives a live daemon + HTTP server on a unix socket.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.serve import ServeClient
from repro.serve.client import ServeUnavailable

from test_serve import FIR, FIR_ARGS, _HTTPFixture

pytestmark = pytest.mark.timeout(180)


def test_daemon_restart_mid_session_recovers(tmp_path):
    """A restart between calls is absorbed by the one transparent
    reconnect: the stale keep-alive connection fails, the client
    redials, and the caller sees an ordinary reply."""
    fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=4)
    socket_path = fixture.socket_path
    client = ServeClient(path=socket_path, timeout=30.0)
    try:
        assert client.wait_ready(timeout=10.0)["status"] == "ok"
        first = client.compile(FIR, FIR_ARGS)
        assert first["status"] == "ok"

        fixture.close()
        # A fresh daemon on the same path (the old bind must be
        # unlinked first, as a restarting deployment would).
        os.unlink(socket_path)
        fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=4)
        assert fixture.socket_path == socket_path

        second = client.compile(FIR, FIR_ARGS)
        assert second["status"] == "ok"
        assert second["c_source"] == first["c_source"]
    finally:
        client.close()
        fixture.close()


def test_second_consecutive_failure_raises_cleanly(tmp_path):
    """When the daemon is really gone, both attempts fail and the
    client raises ServeUnavailable — not a bare socket error — and
    stays usable for a later retry."""
    fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=4)
    socket_path = fixture.socket_path
    client = ServeClient(path=socket_path, timeout=5.0)
    try:
        assert client.healthz()["status"] == "ok"
        fixture.close()
        os.unlink(socket_path)

        with pytest.raises(ServeUnavailable) as info:
            client.healthz()
        assert "daemon unreachable" in str(info.value)
        # The failed attempts tore the cached connection down, so a
        # comeback daemon is reachable again through the same client.
        fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=4)
        assert client.healthz()["status"] == "ok"
    finally:
        client.close()
        fixture.close()


def test_never_started_daemon_is_unavailable(tmp_path):
    client = ServeClient(path=str(tmp_path / "absent.sock"), timeout=5.0)
    with pytest.raises(ServeUnavailable):
        client.healthz()


def test_wait_ready_timeout_is_bounded(tmp_path):
    client = ServeClient(path=str(tmp_path / "absent.sock"), timeout=5.0)
    t0 = time.monotonic()
    with pytest.raises(ServeUnavailable, match="not ready after"):
        client.wait_ready(timeout=0.4, interval=0.05)
    elapsed = time.monotonic() - t0
    assert 0.4 <= elapsed < 10.0
    # A zero timeout never polls at all and still raises the
    # structured error rather than looping forever.
    with pytest.raises(ServeUnavailable, match="not ready"):
        client.wait_ready(timeout=0.0)


def test_wait_ready_returns_health_when_up(tmp_path):
    fixture = _HTTPFixture(tmp_path, workers=1, queue_depth=4)
    try:
        with ServeClient(path=fixture.socket_path, timeout=10.0) as client:
            reply = client.wait_ready(timeout=10.0)
            assert reply["status"] == "ok"
            assert reply["http_status"] == 200
    finally:
        fixture.close()


def test_client_needs_an_address():
    with pytest.raises(ValueError, match="unix socket path or a TCP"):
        ServeClient()
