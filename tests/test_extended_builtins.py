"""Differential tests for the extended builtin set.

norm / var / std / any / all / cumsum / sort, checked interpreter vs
simulator (baseline and optimized) vs gcc on selected cases.
"""

import numpy as np
import pytest

from repro.compiler import arg
from repro.errors import SemanticError

from helpers import check_program

RNG = np.random.default_rng(77)


def rrow(n):
    return RNG.standard_normal((1, n))


def test_norm_real_vector():
    check_program("function y = f(x)\ny = norm(x);\nend",
                  [arg((1, 17))], [rrow(17)], with_gcc=True)


def test_norm_complex_vector_uses_cmag2():
    src = "function y = f(z)\ny = norm(z);\nend"
    z = RNG.standard_normal((1, 9)) + 1j * RNG.standard_normal((1, 9))
    result, _ = check_program(src, [arg((1, 9), complex=True)], [z])
    mix = result.instruction_mix([z])
    assert mix.get("cmag2_c128", 0) == 9


def test_norm_column_vector():
    check_program("function y = f(x)\ny = norm(x);\nend",
                  [arg((12, 1))], [RNG.standard_normal((12, 1))])


def test_norm_of_scalar_is_abs():
    check_program("function y = f(x)\ny = norm(x);\nend",
                  [arg()], [-3.5])


def test_var_and_std():
    src = "function [v, s] = f(x)\nv = var(x);\ns = std(x);\nend"
    check_program(src, [arg((1, 25))], [rrow(25)], nargout=2,
                  with_gcc=True)


def test_var_of_length_one_is_zero():
    check_program("function v = f(x)\nv = var(x);\nend",
                  [arg((1, 1))], [np.array([[3.0]])])


def test_var_rejects_complex():
    with pytest.raises(SemanticError, match="complex"):
        check_program("function v = f(z)\nv = var(z);\nend",
                      [arg((1, 4), complex=True)],
                      [np.zeros((1, 4), dtype=complex)])


def test_any_all_semantics():
    src = "function [a, b] = f(x)\na = any(x);\nb = all(x);\nend"
    check_program(src, [arg((1, 6))],
                  [np.array([[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]])], nargout=2)
    check_program(src, [arg((1, 6))],
                  [np.array([[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]])], nargout=2)
    check_program(src, [arg((1, 6))], [np.zeros((1, 6))], nargout=2)


def test_any_of_complex():
    src = "function a = f(z)\na = any(z);\nend"
    z = np.zeros((1, 4), dtype=complex)
    check_program(src, [arg((1, 4), complex=True)], [z])
    z[0, 2] = 1j
    check_program(src, [arg((1, 4), complex=True)], [z])


def test_cumsum_real_and_complex():
    check_program("function y = f(x)\ny = cumsum(x);\nend",
                  [arg((1, 15))], [rrow(15)], with_gcc=True)
    z = RNG.standard_normal((1, 7)) + 1j * RNG.standard_normal((1, 7))
    check_program("function y = f(z)\ny = cumsum(z);\nend",
                  [arg((1, 7), complex=True)], [z])


def test_cumsum_column_orientation():
    check_program("function y = f(x)\ny = cumsum(x);\nend",
                  [arg((9, 1))], [RNG.standard_normal((9, 1))])


@pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
def test_sort_every_size(n):
    check_program("function y = f(x)\ny = sort(x);\nend",
                  [arg((1, n))], [rrow(n)])


def test_sort_with_duplicates_and_negatives():
    x = np.array([[3.0, -1.0, 3.0, 0.0, -1.0, 7.0]])
    check_program("function y = f(x)\ny = sort(x);\nend",
                  [arg((1, 6))], [x], with_gcc=True)


def test_sort_already_sorted_and_reversed():
    up = np.arange(8.0).reshape(1, -1)
    check_program("function y = f(x)\ny = sort(x);\nend",
                  [arg((1, 8))], [up])
    check_program("function y = f(x)\ny = sort(x);\nend",
                  [arg((1, 8))], [up[:, ::-1].copy()])


def test_median_via_sort():
    src = """
function m = f(x)
s = sort(x);
n = length(x);
h = floor(n / 2);
if mod(n, 2) == 0
    m = (s(h) + s(h + 1)) / 2;
else
    m = s(h + 1);
end
end
"""
    for n in (5, 6):
        x = rrow(n)
        result, outputs = check_program(src, [arg((1, n))], [x])
        assert np.isclose(np.asarray(outputs[0]).ravel()[0],
                          np.median(x))


def test_composition_normalize_by_norm():
    src = """
function y = f(x)
y = x ./ norm(x);
end
"""
    check_program(src, [arg((1, 20))], [rrow(20)])
