"""Pytest configuration for the unit/integration suite.

Shared helper functions live in :mod:`helpers`; this file only ensures
the tests directory is importable as top-level modules.
"""
