"""Pytest configuration for the unit/integration suite.

Shared helper functions live in :mod:`helpers`; this file also provides
a per-test timeout fallback for the concurrency tier.  When
``pytest-timeout`` is installed (CI installs it and passes
``--timeout``), it owns enforcement and the fallback stays inert.  In
environments without the plugin, an autouse SIGALRM fixture enforces
the ``timeout(seconds)`` marker — and the ``REPRO_TEST_TIMEOUT``
environment default, when set — so a wedged worker-pool test fails
loudly instead of hanging the whole run.
"""

from __future__ import annotations

import os
import signal
import threading
from importlib.util import find_spec

import pytest

_HAVE_PYTEST_TIMEOUT = find_spec("pytest_timeout") is not None


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test when it runs longer than "
        "``seconds`` (enforced by pytest-timeout when installed, "
        "otherwise by the SIGALRM fallback in tests/conftest.py)")


if not _HAVE_PYTEST_TIMEOUT:

    @pytest.fixture(autouse=True)
    def _sigalrm_test_timeout(request):
        marker = request.node.get_closest_marker("timeout")
        if marker and marker.args:
            seconds = float(marker.args[0])
        else:
            seconds = float(os.environ.get("REPRO_TEST_TIMEOUT") or 0)
        # SIGALRM only works on the main thread; tests running off it
        # (none today) just forgo the fallback.
        if seconds <= 0 or \
                threading.current_thread() is not threading.main_thread():
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded {seconds:.0f}s (SIGALRM timeout "
                "fallback; install pytest-timeout for stack dumps)")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
