"""Unit tests for the parameterized processor model and ISA library."""

import pytest

from repro.asip.isa_library import (
    available_processors,
    generic_scalar_dsp,
    load_processor,
    simd_dsp_with_width,
    vliw_simd_dsp,
    wide_simd_dsp,
)
from repro.asip.model import (
    CostTable,
    Instruction,
    ProcessorDescription,
    make_complex_instruction_set,
    make_simd_instruction_set,
)
from repro.errors import IsaError
from repro.ir.types import ScalarKind


def test_instruction_validation_unknown_operation():
    with pytest.raises(IsaError, match="unknown operation"):
        Instruction(name="x", operation="warp_drive",
                    elem=ScalarKind.F64, lanes=4, cycles=1, intrinsic="i")


def test_instruction_validation_bad_lanes_and_cycles():
    with pytest.raises(IsaError, match="lanes"):
        Instruction(name="x", operation="vadd", elem=ScalarKind.F64,
                    lanes=0, cycles=1, intrinsic="i")
    with pytest.raises(IsaError, match="cycles"):
        Instruction(name="x", operation="vadd", elem=ScalarKind.F64,
                    lanes=4, cycles=0, intrinsic="i")


def test_duplicate_instruction_rejected():
    instr = Instruction(name="dup", operation="vadd", elem=ScalarKind.F64,
                        lanes=4, cycles=1, intrinsic="i")
    with pytest.raises(IsaError, match="duplicate"):
        ProcessorDescription(name="p", instructions=[instr, instr])


def test_find_exact_match():
    processor = vliw_simd_dsp()
    instr = processor.find("vmac", ScalarKind.F32, 8)
    assert instr is not None and instr.intrinsic == "asip_vmac_f32x8"
    assert processor.find("vmac", ScalarKind.F32, 16) is None


def test_simd_lanes_requires_complete_group():
    # A width with only an add instruction is not usable.
    partial = [Instruction(name="lonely", operation="vadd",
                           elem=ScalarKind.F64, lanes=16, cycles=1,
                           intrinsic="i")]
    processor = ProcessorDescription(
        name="p", instructions=partial +
        make_simd_instruction_set(ScalarKind.F64, 4))
    assert processor.simd_lanes(ScalarKind.F64) == [4]


def test_best_simd_width_widest_first():
    processor = wide_simd_dsp()
    assert processor.best_simd_width(ScalarKind.F64) == 8
    assert processor.simd_lanes(ScalarKind.F64) == [8, 4]


def test_has_complex_arith():
    assert vliw_simd_dsp().has_complex_arith(ScalarKind.C128)
    assert not generic_scalar_dsp().has_complex_arith(ScalarKind.C128)
    assert not vliw_simd_dsp().has_complex_arith(ScalarKind.F64)


def test_make_simd_set_contents():
    group = make_simd_instruction_set(ScalarKind.F32, 8)
    operations = {i.operation for i in group}
    assert {"vload", "vloadr", "vstore", "vadd", "vmul", "vmac",
            "vsplat", "vredadd"} <= operations
    assert all(i.lanes == 8 and i.elem is ScalarKind.F32 for i in group)


def test_make_simd_set_complex_includes_vconj():
    group = make_simd_instruction_set(ScalarKind.C128, 2)
    assert any(i.operation == "vconj" for i in group)
    real_group = make_simd_instruction_set(ScalarKind.F64, 4)
    assert not any(i.operation == "vconj" for i in real_group)


def test_make_complex_set():
    group = make_complex_instruction_set(ScalarKind.C64)
    assert {i.operation for i in group} == \
        {"cadd", "csub", "cmul", "cmac", "cconj", "cmag2"}
    with pytest.raises(IsaError, match="complex"):
        make_complex_instruction_set(ScalarKind.F64)


def test_cost_table_defaults_and_lookup():
    costs = CostTable()
    assert costs.for_binop("add") == costs.add
    assert costs.for_binop("div") == costs.div
    assert costs.for_binop("pow") == costs.pow
    assert costs.for_binop("eq") == costs.compare
    assert costs.for_math("sqrt") == costs.sqrt
    assert costs.for_math("sin") == costs.math_call
    assert costs.for_math("floor") == costs.add


def test_library_names_and_loading():
    names = available_processors()
    assert names == sorted(names)
    for name in names:
        processor = load_processor(name)
        assert processor.name == name


def test_unknown_processor_message_lists_options():
    with pytest.raises(KeyError, match="available"):
        load_processor("nonexistent")


def test_summary_mentions_instructions():
    text = vliw_simd_dsp().summary()
    assert "vmac" in text and "asip_" in text


def test_parametric_family_widths():
    processor = simd_dsp_with_width(8)
    assert processor.simd_lanes(ScalarKind.F64) == [8, 4, 2]
    assert processor.simd_lanes(ScalarKind.F32) == [16, 8, 4]


def test_instruction_by_name():
    processor = vliw_simd_dsp()
    assert processor.instruction_by_name("mac_f64") is not None
    assert processor.instruction_by_name("nope") is None


def test_instruction_flags():
    simd = make_simd_instruction_set(ScalarKind.F64, 4)[0]
    assert simd.is_simd and not simd.is_complex
    cplx = make_complex_instruction_set(ScalarKind.C128)[0]
    assert cplx.is_complex and not cplx.is_simd
