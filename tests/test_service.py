"""Concurrency/stress tier for the parallel compilation service.

Every test here must uphold the service's core contract: N workers x
M jobs with injected crashes, hangs, and exceptions — no hang, no lost
job, every job terminates in exactly one structured ``JobResult``, and
the aggregated cache statistics add up.  The suite is the reason
``tests/conftest.py`` carries a timeout fallback: a regression in the
crash-isolation scheduler shows up as a wedge, and a wedge must fail,
not stall CI.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import parse_arg_spec
from repro.compiler import compile_source
from repro.service import (CompileJob, CompileService, JOB_STATUSES,
                           next_job_id)

pytestmark = pytest.mark.timeout(180)

MANIFEST = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "mlab", "manifest.json")


def _kernel_jobs() -> "list[CompileJob]":
    """The six example kernels with their manifest signatures."""
    with open(MANIFEST) as handle:
        manifest = json.load(handle)
    kernel_dir = os.path.dirname(MANIFEST)
    jobs = []
    for name in sorted(manifest):
        spec = manifest[name]
        with open(os.path.join(kernel_dir, name)) as handle:
            source = handle.read()
        jobs.append(CompileJob(
            job_id=name, source=source,
            args=[s.strip() for s in spec["args"].split(",")],
            entry=spec["entry"], filename=name))
    return jobs


def _simple_job(tag: int, **fields) -> CompileJob:
    """A small, distinct compile job (distinct source => distinct
    cache key, so cache hits in a test are intentional)."""
    source = (f"function y = k{tag}(x)\n"
              f"y = x * {tag}.0 + {tag}.0;\n"
              "end")
    return CompileJob(job_id=next_job_id(f"t{tag}"), source=source,
                      args=["double:1x32"], **fields)


# ---------------------------------------------------------------------
# Happy path
# ---------------------------------------------------------------------


def test_batch_matches_serial_byte_for_byte(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    jobs = _kernel_jobs()
    with CompileService(jobs=2) as service:
        batch = service.compile_batch(jobs)
    assert batch.ok
    assert [r.job_id for r in batch.results] == [j.job_id for j in jobs]
    for job, result in zip(jobs, batch.results):
        serial = compile_source(
            job.source, args=[parse_arg_spec(s) for s in job.args],
            entry=job.entry, filename=job.filename, use_cache=False)
        assert result.c_source == serial.c_source(), job.job_id
        assert result.entry_name == serial.entry_name
        assert result.attempts == 1
        assert result.worker_pid > 0


def test_batch_merges_observability_streams():
    with CompileService(jobs=2) as service:
        batch = service.compile_batch(_kernel_jobs())
    assert batch.ok
    counters = batch.counters()
    assert counters["batch.jobs_ok"] == len(batch.results)
    assert counters["batch.attempts"] == len(batch.results)
    # Worker trace streams made it back and were re-based.
    assert all(result.spans for result in batch.results)
    trace = batch.to_chrome_trace()
    events = trace["traceEvents"]
    assert events[0]["name"] == "batch"
    worker_tids = {e["tid"] for e in events
                   if e["ph"] == "X" and e["name"] != "batch"}
    assert worker_tids == {r.worker_pid for r in batch.results}
    for event in events:
        assert event["ph"] in ("X", "C")
        assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_cache_stats_add_up_for_clean_batch(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    jobs = [_simple_job(tag) for tag in range(8)]
    with CompileService(jobs=2) as service:
        batch = service.compile_batch(jobs)
    assert batch.ok
    stats = batch.cache_stats()
    # Every job ran exactly one compile attempt; distinct sources mean
    # every lookup resolves (hit or miss) exactly once per attempt.
    assert stats["hits"] + stats["misses"] == len(jobs)


def test_shared_disk_cache_across_service_restarts(tmp_path):
    jobs = [_simple_job(tag) for tag in range(4)]
    with CompileService(jobs=2, cache_dir=tmp_path) as service:
        first = service.compile_batch(jobs)
    assert first.ok
    assert first.cache_stats()["disk_writes"] == len(jobs)
    # Fresh workers: in-memory LRUs are cold, the disk layer is warm.
    rerun = [CompileJob(job_id=f"re-{j.job_id}", source=j.source,
                        args=list(j.args)) for j in jobs]
    with CompileService(jobs=2, cache_dir=tmp_path) as service:
        second = service.compile_batch(rerun)
    assert second.ok
    stats = second.cache_stats()
    assert stats["hits"] == len(jobs)
    assert stats["disk_hits"] == len(jobs)
    assert stats["misses"] == 0
    # Disk-hit results carry the same C as the original compiles.
    by_id = {r.job_id: r for r in first.results}
    for result in second.results:
        assert result.c_source == by_id[result.job_id[3:]].c_source


def test_batch_report_document(tmp_path):
    with CompileService(jobs=1) as service:
        batch = service.compile_batch([_simple_job(1), _simple_job(2)])
    path = tmp_path / "batch.json"
    batch.write_report(str(path))
    report = json.loads(path.read_text())
    assert report["schema"] == "repro-batch-report-v2"
    assert report["by_status"] == {"ok": 2}
    assert len(report["jobs"]) == 2
    assert report["counters"]["batch.jobs_ok"] == 2


# ---------------------------------------------------------------------
# Fault injection: errors, crashes, timeouts, poison
# ---------------------------------------------------------------------


def test_compile_error_is_structured_and_not_retried():
    bad = CompileJob(job_id="bad", source="function y = f(x)\n"
                     "y = no_such_builtin(x);\nend",
                     args=["double:1x8"])
    with CompileService(jobs=1) as service:
        batch = service.compile_batch([bad, _simple_job(3)])
    assert [r.status for r in batch.results] == ["error", "ok"]
    failed = batch.results[0]
    assert failed.attempts == 1            # deterministic: no retry
    assert failed.error_type
    assert failed.detail
    assert not batch.ok


def test_crashing_job_is_isolated_from_innocent_jobs():
    jobs = [_simple_job(tag) for tag in range(4)]
    jobs.insert(2, CompileJob(job_id="boom", source="function y = f(x)\n"
                              "y = x;\nend", args=["double:1x8"],
                              test_hook="crash"))
    with CompileService(jobs=2, max_retries=2, backoff=0.01,
                        allow_test_hooks=True) as service:
        batch = service.compile_batch(jobs)
    by_id = {r.job_id: r for r in batch.results}
    assert by_id["boom"].status == "crash"
    assert by_id["boom"].attempts == 3     # first try + max_retries
    innocents = [r for r in batch.results if r.job_id != "boom"]
    assert all(r.status == "ok" for r in innocents)
    assert len(batch.results) == len(jobs)


def test_hanging_job_times_out_in_worker():
    jobs = [_simple_job(5),
            CompileJob(job_id="wedge", source="function y = f(x)\n"
                       "y = x;\nend", args=["double:1x8"],
                       test_hook="hang", timeout=1.0),
            _simple_job(6)]
    with CompileService(jobs=2, allow_test_hooks=True) as service:
        batch = service.compile_batch(jobs)
    by_id = {r.job_id: r for r in batch.results}
    assert by_id["wedge"].status == "timeout"
    assert "deadline" in by_id["wedge"].detail
    assert by_id["wedge"].attempts == 1    # deterministic: no retry
    assert sum(r.status == "ok" for r in batch.results) == 2


def test_stall_watchdog_recovers_deadline_free_hang():
    # No per-job timeout at all: only the parent watchdog can save
    # this batch.
    jobs = [CompileJob(job_id="wedge", source="function y = f(x)\n"
                       "y = x;\nend", args=["double:1x8"],
                       test_hook="hang")]
    with CompileService(jobs=1, max_retries=0, stall_grace=2.0,
                        backoff=0.01, allow_test_hooks=True) as service:
        batch = service.compile_batch(jobs)
    assert batch.results[0].status == "timeout"
    assert "watchdog" in batch.results[0].detail


def test_service_survives_batch_after_faults():
    with CompileService(jobs=2, max_retries=1, backoff=0.01,
                        allow_test_hooks=True) as service:
        first = service.compile_batch([
            CompileJob(job_id="boom", source="x", args=["double:1x8"],
                       test_hook="crash"),
            _simple_job(7)])
        assert {r.status for r in first.results} == {"crash", "ok"}
        second = service.compile_batch([_simple_job(8), _simple_job(9)])
    assert second.ok


def test_stress_matrix_mixed_faults():
    """N workers x M jobs with every failure mode at once."""
    hooks = {2: "crash", 5: "exception", 8: "hang"}
    jobs = []
    for tag in range(12):
        job = _simple_job(tag, timeout=5.0)
        job.test_hook = hooks.get(tag)
        job.job_id = f"j{tag}"
        jobs.append(job)
    with CompileService(jobs=3, max_retries=1, backoff=0.01,
                        allow_test_hooks=True) as service:
        batch = service.compile_batch(jobs)

    # No lost jobs, submission order preserved, legal statuses only.
    assert [r.job_id for r in batch.results] == [j.job_id for j in jobs]
    assert all(r.status in JOB_STATUSES for r in batch.results)
    by_id = {r.job_id: r for r in batch.results}
    assert by_id["j2"].status == "crash"
    assert by_id["j2"].attempts == 2       # first try + max_retries=1
    assert by_id["j5"].status == "error"   # exception, not a crash
    # The error result itself is final (never retried), but the job may
    # have been re-run once as an innocent bystander of j2's pool break.
    assert 1 <= by_id["j5"].attempts <= 2
    assert by_id["j8"].status == "timeout"
    clean = [r for r in batch.results
             if r.job_id not in ("j2", "j5", "j8")]
    assert all(r.status == "ok" for r in clean)
    # Cache add-up: every attempt that reached the compiler resolved
    # exactly one lookup (j5's injected exception fires before the
    # compile, so it contributes none).
    stats = batch.cache_stats()
    assert stats["hits"] + stats["misses"] == len(clean)
    counters = batch.counters()
    assert counters["batch.jobs_ok"] == len(clean)
    assert counters["batch.attempts"] >= len(jobs)


def test_acceptance_faults_amid_real_kernels():
    """ISSUE acceptance: a run with an injected worker crash and one
    timed-out job completes, reports exactly those two as failed, and
    every other job's C is byte-identical to a serial compile."""
    jobs = _kernel_jobs()
    jobs.insert(2, CompileJob(job_id="crash-me", source="function y"
                              " = f(x)\ny = x;\nend", args=["double:1x8"],
                              test_hook="crash"))
    jobs.insert(5, CompileJob(job_id="time-me-out", source="function y"
                              " = f(x)\ny = x;\nend", args=["double:1x8"],
                              test_hook="hang", timeout=1.0))
    with CompileService(jobs=2, max_retries=1, backoff=0.01,
                        allow_test_hooks=True) as service:
        batch = service.compile_batch(jobs)
    by_id = {r.job_id: r for r in batch.results}
    assert by_id["crash-me"].status == "crash"
    assert by_id["time-me-out"].status == "timeout"
    assert sorted(r.job_id for r in batch.failed()) \
        == ["crash-me", "time-me-out"]
    for job in jobs:
        if job.test_hook:
            continue
        serial = compile_source(
            job.source, args=[parse_arg_spec(s) for s in job.args],
            entry=job.entry, filename=job.filename, use_cache=False)
        assert by_id[job.job_id].c_source == serial.c_source(), job.job_id


def test_unknown_processor_spec_is_an_error_result():
    job = _simple_job(10)
    job.processor = "no_such_dsp"
    with CompileService(jobs=1) as service:
        batch = service.compile_batch([job])
    assert batch.results[0].status == "error"
    assert "no_such_dsp" in batch.results[0].detail


def test_simd_width_processor_spec_compiles():
    job = _simple_job(11)
    job.processor = "simd_width:4"
    with CompileService(jobs=1) as service:
        batch = service.compile_batch([job])
    assert batch.ok


# ---------------------------------------------------------------------
# Scaling (acceptance: gated on real parallelism being available)
# ---------------------------------------------------------------------


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="needs >= 4 cores for a meaningful speedup")
def test_parallel_speedup_cold_cache(monkeypatch):
    import time

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)

    def batch_jobs():
        return [_simple_job(100 + tag) for tag in range(16)]

    t0 = time.perf_counter()
    with CompileService(jobs=1) as service:
        assert service.compile_batch(batch_jobs()).ok
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with CompileService(jobs=8) as service:
        assert service.compile_batch(batch_jobs()).ok
    parallel_s = time.perf_counter() - t0
    assert parallel_s * 3.0 <= serial_s, \
        f"serial {serial_s:.2f}s vs --jobs 8 {parallel_s:.2f}s"
