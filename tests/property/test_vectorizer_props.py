"""Property-based equivalence of vectorized kernels.

Randomized kernel shapes (length, coefficient, access offsets, element
class) hammered over the SIMD strip-mining boundaries: vectorized code
must agree with the scalar-only pipeline and the golden interpreter for
every length, including tails of every residue class.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, arg, compile_source
from repro.mlab.interp import MatlabInterpreter

lengths = st.integers(min_value=1, max_value=70)
seeds = st.integers(min_value=0, max_value=2 ** 31)


def _three_way(source, entry, args, inputs, tol=1e-9):
    golden = np.asarray(
        MatlabInterpreter(source).call(entry, list(inputs))[0])
    vectorized = compile_source(source, args=args)
    scalar = compile_source(source, args=args,
                            options=CompilerOptions(simd=False))
    out_vec = np.atleast_2d(np.asarray(
        vectorized.simulate(list(inputs)).outputs[0]))
    out_scl = np.atleast_2d(np.asarray(
        scalar.simulate(list(inputs)).outputs[0]))
    golden = np.atleast_2d(golden)
    assert np.allclose(out_scl, golden, atol=tol, rtol=tol)
    assert np.allclose(out_vec, golden, atol=tol, rtol=tol)


@given(lengths, seeds, st.floats(-3, 3, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scaled_offset_store(n, seed, c):
    source = """
function y = f(x, c)
y = zeros(1, length(x));
for k = 1:length(x)
    y(k) = c * x(k) + 1;
end
end
"""
    rng = np.random.default_rng(seed)
    _three_way(source, "f", [arg((1, n)), arg()],
               [rng.standard_normal((1, n)), c])


@given(lengths, seeds)
@settings(max_examples=40, deadline=None)
def test_dot_reduction_every_tail(n, seed):
    source = """
function s = f(a, b)
s = 0;
for k = 1:length(a)
    s = s + a(k) * b(k);
end
end
"""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((1, n))
    b = rng.standard_normal((1, n))
    golden = float(np.sum(a * b))
    result = compile_source(source, args=[arg((1, n)), arg((1, n))])
    out = result.simulate([a, b]).outputs[0]
    assert np.isclose(out, golden, atol=1e-9 * max(n, 1), rtol=1e-9)


@given(st.integers(min_value=1, max_value=40), seeds)
@settings(max_examples=30, deadline=None)
def test_reversed_load_every_length(n, seed):
    source = """
function y = f(x)
n = length(x);
y = zeros(1, n);
for k = 1:n
    y(k) = x(n - k + 1) * 2;
end
end
"""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, n))
    result = compile_source(source, args=[arg((1, n))])
    out = np.asarray(result.simulate([x]).outputs[0]).ravel()
    assert np.allclose(out, 2 * x.ravel()[::-1])


@given(st.integers(min_value=0, max_value=12),
       st.integers(min_value=1, max_value=30), seeds)
@settings(max_examples=30, deadline=None)
def test_shifted_window_offsets(offset, n, seed):
    total = n + offset
    source = f"""
function y = f(x)
y = zeros(1, {n});
for k = 1:{n}
    y(k) = x(k + {offset});
end
end
"""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, total))
    result = compile_source(source, args=[arg((1, total))])
    out = np.asarray(result.simulate([x]).outputs[0]).ravel()
    assert np.allclose(out, x.ravel()[offset:offset + n])


@given(st.integers(min_value=1, max_value=33), seeds)
@settings(max_examples=25, deadline=None)
def test_complex_simd_every_tail(n, seed):
    source = """
function s = f(a, b)
s = 0;
for k = 1:length(a)
    s = s + conj(a(k)) * b(k);
end
end
"""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((1, n)) + 1j * rng.standard_normal((1, n))
    b = rng.standard_normal((1, n)) + 1j * rng.standard_normal((1, n))
    result = compile_source(source, args=[arg((1, n), complex=True),
                                          arg((1, n), complex=True)])
    out = result.simulate([a, b]).outputs[0]
    assert np.isclose(out, np.vdot(a.ravel(), b.ravel()),
                      atol=1e-9 * max(n, 1))


@given(st.sampled_from(["double", "single"]), lengths, seeds)
@settings(max_examples=30, deadline=None)
def test_elementwise_both_precisions(dtype, n, seed):
    source = """
function y = f(a, b)
y = a .* b - a;
end
"""
    rng = np.random.default_rng(seed)
    np_dtype = np.float32 if dtype == "single" else np.float64
    a = rng.standard_normal((1, n)).astype(np_dtype)
    b = rng.standard_normal((1, n)).astype(np_dtype)
    tol = 1e-5 if dtype == "single" else 1e-12
    _three_way(source, "f", [arg((1, n), dtype=dtype),
                             arg((1, n), dtype=dtype)], [a, b], tol=tol)
