"""Soundness of the per-call-site specialization cache.

The typed-function cache is keyed by ``(name, argument type tuple)``
through :func:`_signature_key`.  Three properties keep it honest:

* **idempotence** — asking for the same signature twice returns the
  memoized object and performs no second analysis;
* **separation** — distinct argument-type tuples never share a cache
  entry (the key function is injective over dtype, complexness, shape
  and pinned scalar value);
* **fixpoint** — parse -> unparse -> parse is stable over the extended
  grammar (subfunctions, multi-return, while loops), which the fuzz
  reducer relies on when it rewrites programs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.parser import parse
from repro.frontend.unparse import to_source
from repro.fuzz.generator import ProgramGenerator
from repro.semantics.inference import Inferencer, _signature_key
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType

DTYPES = [DType.DOUBLE, DType.SINGLE]

mtypes = st.builds(
    MType,
    st.sampled_from(DTYPES),
    st.booleans(),
    st.builds(Shape, st.integers(min_value=1, max_value=8),
              st.integers(min_value=1, max_value=8)),
    st.none(),
)

type_tuples = st.lists(mtypes, min_size=1, max_size=3)

SRC_ONE = """function y = f(a)
y = a + a;
end
"""

SRC_TWO = """function y = f(a, b)
y = a;
end

function [p, q] = g(u, v)
p = u + u;
q = v;
end
"""


def _make_inferencer(source: str) -> Inferencer:
    return Inferencer(parse(source))


# ---------------------------------------------------------------------------
# Idempotence: one analysis per signature


@given(mtypes)
@settings(max_examples=80, deadline=None)
def test_same_signature_never_specializes_twice(mtype):
    inferencer = _make_inferencer(SRC_ONE)
    first = inferencer.specialize("f", [mtype])
    cached_count = len(inferencer.specialized)
    second = inferencer.specialize("f", [mtype])
    assert second is first
    assert len(inferencer.specialized) == cached_count


@given(st.lists(mtypes, min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_cache_size_equals_distinct_signatures(arg_list):
    inferencer = _make_inferencer(SRC_ONE)
    for mtype in arg_list:
        inferencer.specialize("f", [mtype])
    distinct = {_signature_key("f", [m]) for m in arg_list}
    assert set(inferencer.specialized) == distinct


# ---------------------------------------------------------------------------
# Separation: distinct tuples never collide


@given(type_tuples, type_tuples)
@settings(max_examples=120, deadline=None)
def test_distinct_signatures_never_share(a, b):
    key_a = _signature_key("g", a)
    key_b = _signature_key("g", b)
    described_a = [(t.dtype, t.is_complex, t.shape.rows, t.shape.cols)
                   for t in a]
    described_b = [(t.dtype, t.is_complex, t.shape.rows, t.shape.cols)
                   for t in b]
    if described_a == described_b:
        assert key_a == key_b
    else:
        assert key_a != key_b


@given(mtypes, mtypes)
@settings(max_examples=80, deadline=None)
def test_specializations_of_distinct_types_are_distinct_objects(a, b):
    if (a.dtype, a.is_complex, a.shape.rows, a.shape.cols) == \
            (b.dtype, b.is_complex, b.shape.rows, b.shape.cols):
        return
    inferencer = _make_inferencer(SRC_TWO)
    spec_a = inferencer.specialize("g", [a, a])
    spec_b = inferencer.specialize("g", [b, b])
    assert spec_a is not spec_b
    assert spec_a.mangled_name != spec_b.mangled_name


def test_value_pinned_scalars_get_their_own_entry():
    pinned = MType(DType.DOUBLE, False, Shape(1, 1), 4.0)
    plain = MType(DType.DOUBLE, False, Shape(1, 1), None)
    assert _signature_key("f", [pinned]) != _signature_key("f", [plain])


# ---------------------------------------------------------------------------
# Fixpoint over the extended grammar


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=60, deadline=None)
def test_parse_unparse_fixpoint_extended_grammar(seed):
    prog = ProgramGenerator(seed, mode="compile").generate()
    once = to_source(parse(prog.source))
    twice = to_source(parse(once))
    assert once == twice


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=30, deadline=None)
def test_generator_emits_subfunctions_and_while(seed):
    """The extended grammar actually appears in the sampled space —
    otherwise the fixpoint above silently stops covering it."""
    bucket = "".join(ProgramGenerator(s).generate().source
                     for s in range(seed, seed + 8))
    assert "function" in bucket
    # At least one of the two new constructs shows up in any window of
    # eight consecutive seeds (tuned generator frequencies make this
    # overwhelmingly likely; a miss means the weights regressed).
    assert "while " in bucket or bucket.count("function") > 8
