"""Property-based tests for the lexer (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as K

identifiers = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True) \
    .filter(lambda s: s not in {
        "function", "end", "if", "elseif", "else", "for", "while",
        "switch", "case", "otherwise", "break", "continue", "return"})

finite_floats = st.floats(min_value=0.0, max_value=1e12,
                          allow_nan=False, allow_infinity=False)


@given(identifiers)
def test_identifiers_round_trip(name):
    tokens = tokenize(name)
    assert tokens[0].kind is K.IDENT
    assert tokens[0].text == name


@given(st.integers(min_value=0, max_value=10 ** 12))
def test_integer_literals_round_trip(value):
    tokens = tokenize(str(value))
    assert tokens[0].kind is K.INT_NUMBER
    assert tokens[0].value == value


@given(finite_floats)
def test_float_literals_round_trip(value):
    text = repr(value)
    tokens = tokenize(text)
    assert tokens[0].kind in (K.NUMBER, K.INT_NUMBER)
    assert math.isclose(float(tokens[0].value), value, rel_tol=1e-15)


@given(finite_floats)
def test_imaginary_literals_round_trip(value):
    tokens = tokenize(repr(value) + "i")
    assert tokens[0].kind is K.IMAG_NUMBER
    assert math.isclose(float(tokens[0].value), value, rel_tol=1e-15)


@given(st.text(alphabet=st.characters(
    codec="ascii", exclude_characters="'\n\r"), max_size=30))
def test_string_literals_round_trip(content):
    source = "'" + content.replace("'", "''") + "'"
    tokens = tokenize(source)
    assert tokens[0].kind is K.STRING
    assert tokens[0].value == content


@given(st.lists(st.sampled_from(
    ["+", "-", "*", "/", ".*", "./", ".^", "==", "~=", "<=", ">=",
     "&&", "||", "(", ")", ",", ";"]), min_size=1, max_size=20))
def test_operator_streams_never_crash(ops):
    tokens = tokenize(" ".join(ops))
    assert tokens[-1].kind is K.EOF
    # one token per operator plus EOF
    assert len(tokens) == len(ops) + 1


@given(st.lists(st.one_of(identifiers,
                          st.integers(0, 999).map(str)),
                min_size=1, max_size=10))
@settings(max_examples=50)
def test_whitespace_insensitivity_between_atoms(atoms):
    tight = " ".join(atoms)
    spaced = "   ".join(atoms)
    kinds_tight = [t.kind for t in tokenize(tight)]
    kinds_spaced = [t.kind for t in tokenize(spaced)]
    assert kinds_tight == kinds_spaced


@given(identifiers, st.integers(0, 100))
def test_comments_never_leak_tokens(name, value):
    source = f"{name} % comment with {value} stuff' [\n"
    kinds = [t.kind for t in tokenize(source)]
    assert kinds == [K.IDENT, K.NEWLINE, K.EOF]


@given(st.integers(1, 30), st.integers(1, 30))
def test_spans_are_monotone(a, b):
    source = f"alpha{a} + beta{b}"
    tokens = tokenize(source)
    starts = [t.span.start for t in tokens if t.kind is not K.EOF]
    assert starts == sorted(starts)
