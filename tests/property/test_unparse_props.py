"""Round-trip property for the unparser over the fuzzer's program space.

``parse -> to_source -> parse`` must reach a fixed point: the second
parse yields a structurally identical AST (spans excluded — unparsing
legitimately renumbers source locations).  The reducer and the
metamorphic interpreter oracles both lean on this property: they
rewrite ASTs, unparse them, and re-parse the result, so any
unparser/parser asymmetry silently corrupts reduced reproducers.

The program space is the differential fuzzer's own generator — the
richest source of well-formed MATLAB this repo has — in both its
``compile`` and ``interp`` modes.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.parser import parse
from repro.frontend.unparse import to_source
from repro.fuzz.generator import ProgramGenerator

seeds = st.integers(min_value=0, max_value=10 ** 6)


def _shape(node):
    """Structural fingerprint of an AST node, ignoring spans."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return (type(node).__name__,) + tuple(
            _shape(getattr(node, field.name))
            for field in dataclasses.fields(node)
            if field.name != "span")
    if isinstance(node, (list, tuple)):
        return tuple(_shape(item) for item in node)
    return node


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_compile_mode_round_trip(seed):
    source = ProgramGenerator(seed, mode="compile").generate().source
    first = parse(source)
    second = parse(to_source(first))
    assert _shape(first) == _shape(second)


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_interp_mode_round_trip(seed):
    source = ProgramGenerator(seed, mode="interp").generate().source
    first = parse(source)
    second = parse(to_source(first))
    assert _shape(first) == _shape(second)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_unparse_is_a_fixed_point(seed):
    # After one round trip the *text* stabilizes too: unparsing the
    # re-parsed AST reproduces the same source exactly.
    source = ProgramGenerator(seed, mode="compile").generate().source
    once = to_source(parse(source))
    twice = to_source(parse(once))
    assert once == twice
