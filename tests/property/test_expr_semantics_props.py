"""Property-based differential testing of scalar expression compilation.

Random scalar expression trees are rendered to MATLAB, compiled, and
simulated; the result must match the golden interpreter.  This drives
the whole pipeline (parser, inference, lowering, folding, C-level op
mapping) over a far larger expression space than hand-written tests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import arg, compile_source
from repro.mlab.interp import MatlabInterpreter

# Expression grammar over variables a, b, c with safe operations
# (no division by potentially-zero subexpressions, no overflow).

_leaves = st.sampled_from(["a", "b", "c", "0.5", "2", "1.25", "3"])


def _binary(children):
    ops = st.sampled_from(["+", "-", "*", ".*"])
    return st.tuples(ops, children, children).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})")


def _unary(children):
    fns = st.sampled_from(["abs", "cos", "sin", "exp_clamped", "sqrt_abs",
                           "floor", "ceil", "round", "neg"])
    def render(t):
        fn, inner = t
        if fn == "neg":
            return f"(-{inner})"
        if fn == "exp_clamped":
            return f"exp(min({inner}, 4))"
        if fn == "sqrt_abs":
            return f"sqrt(abs({inner}))"
        return f"{fn}({inner})"
    return st.tuples(fns, children).map(render)


expressions = st.recursive(
    _leaves, lambda children: st.one_of(_binary(children),
                                        _unary(children)),
    max_leaves=12)

values = st.floats(min_value=-5.0, max_value=5.0,
                   allow_nan=False, allow_infinity=False)


@given(expressions, values, values, values)
@settings(max_examples=60, deadline=None)
def test_scalar_expression_equivalence(expr, a, b, c):
    source = f"function y = f(a, b, c)\ny = {expr};\nend"
    result = compile_source(source, args=[arg(), arg(), arg()])
    simulated = result.simulate([a, b, c]).outputs[0]
    golden = float(np.asarray(
        MatlabInterpreter(source).call("f", [a, b, c])[0]).ravel()[0])
    assert np.isclose(simulated, golden, atol=1e-9, rtol=1e-9), \
        f"{expr} with a={a}, b={b}, c={c}: {simulated} != {golden}"


comparison_ops = st.sampled_from(["==", "~=", "<", "<=", ">", ">="])
logic_ops = st.sampled_from(["&&", "||"])


@given(comparison_ops, logic_ops, values, values, values)
@settings(max_examples=40, deadline=None)
def test_comparison_and_logic_equivalence(cmp_op, logic_op, a, b, c):
    source = (f"function y = f(a, b, c)\n"
              f"y = (a {cmp_op} b) {logic_op} (c > 0);\nend")
    result = compile_source(source, args=[arg(), arg(), arg()])
    simulated = result.simulate([a, b, c]).outputs[0]
    golden = float(np.asarray(
        MatlabInterpreter(source).call("f", [a, b, c])[0]).ravel()[0])
    assert bool(simulated) == bool(golden)


@given(values, values)
@settings(max_examples=30, deadline=None)
def test_complex_expression_equivalence(re, im):
    source = ("function y = f(re, im)\n"
              "z = complex(re, im);\n"
              "y = abs(conj(z) * z + z) + real(z) - imag(z);\nend")
    result = compile_source(source, args=[arg(), arg()])
    simulated = result.simulate([re, im]).outputs[0]
    golden = float(np.asarray(
        MatlabInterpreter(source).call("f", [re, im])[0]).ravel()[0])
    assert np.isclose(simulated, golden, atol=1e-9, rtol=1e-9)


@given(st.floats(min_value=-100, max_value=100, allow_nan=False),
       st.floats(min_value=0.5, max_value=10, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_mod_rem_equivalence(a, b):
    source = "function [m, r] = f(a, b)\nm = mod(a, b);\nr = rem(a, b);\nend"
    result = compile_source(source, args=[arg(), arg()])
    run = result.simulate([a, b])
    golden = MatlabInterpreter(source).call("f", [a, b], nargout=2)
    assert np.isclose(run.outputs[0],
                      float(np.asarray(golden[0]).ravel()[0]), atol=1e-9)
    assert np.isclose(run.outputs[1],
                      float(np.asarray(golden[1]).ravel()[0]), atol=1e-9)
