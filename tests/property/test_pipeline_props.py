"""Property-based equivalence of the optimization pipelines.

For random element-wise kernels and random reduction kernels over random
vector lengths, the baseline (naive) pipeline, the full optimizing
pipeline, and the golden interpreter must agree — across every SIMD
strip-mining boundary (lengths straddle multiples of 4 and 8).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, arg, compile_source
from repro.mlab.interp import MatlabInterpreter

_ops = st.sampled_from(["+", "-", ".*"])
_chain = st.lists(st.tuples(_ops, st.sampled_from(["a", "b", "2", "0.5"])),
                  min_size=1, max_size=5)


def _render_chain(chain) -> str:
    expr = "a"
    for op, operand in chain:
        expr = f"({expr} {op} {operand})"
    return expr


@given(_chain, st.integers(min_value=1, max_value=40),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40, deadline=None)
def test_elementwise_kernels_equivalent(chain, n, seed):
    expr = _render_chain(chain)
    source = f"function y = f(a, b)\ny = {expr};\nend"
    args = [arg((1, n)), arg((1, n))]
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((1, n))
    b = rng.standard_normal((1, n))

    golden = np.asarray(MatlabInterpreter(source).call("f", [a, b])[0])
    optimized = compile_source(source, args=args)
    baseline = compile_source(source, args=args,
                              options=CompilerOptions.baseline())
    out_opt = np.asarray(optimized.simulate([a, b]).outputs[0])
    out_base = np.asarray(baseline.simulate([a, b]).outputs[0])
    assert np.allclose(out_opt, golden, atol=1e-9, rtol=1e-9)
    assert np.allclose(out_base, golden, atol=1e-9, rtol=1e-9)


@given(st.integers(min_value=1, max_value=36),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30, deadline=None)
def test_reduction_kernels_equivalent(n, seed):
    source = """
function s = f(a, b)
s = 0;
for k = 1:length(a)
    s = s + a(k) * b(k);
end
end
"""
    args = [arg((1, n)), arg((1, n))]
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((1, n))
    b = rng.standard_normal((1, n))
    optimized = compile_source(source, args=args)
    out = optimized.simulate([a, b]).outputs[0]
    # Vector reduction reassociates; allow accumulation tolerance.
    assert np.isclose(out, float(np.sum(a * b)), atol=1e-9 * max(n, 1),
                      rtol=1e-9)


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30, deadline=None)
def test_sliding_window_kernels_equivalent(n, m, seed):
    source = """
function y = f(x, h)
N = length(x);
M = length(h);
y = zeros(1, N);
for i = 1:N
    acc = 0;
    kmax = min(i, M);
    for k = 1:kmax
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end
"""
    args = [arg((1, n)), arg((1, m))]
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, n))
    h = rng.standard_normal((1, m))
    optimized = compile_source(source, args=args)
    out = np.asarray(optimized.simulate([x, h]).outputs[0]).ravel()
    expected = np.convolve(x.ravel(), h.ravel())[:n]
    assert np.allclose(out, expected, atol=1e-9, rtol=1e-9)


@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=2, max_value=9),
       st.integers(min_value=2, max_value=9),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=25, deadline=None)
def test_matmul_equivalent_all_shapes(m, k, n, seed):
    source = "function C = f(A, B)\nC = A * B;\nend"
    args = [arg((m, k)), arg((k, n))]
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    result = compile_source(source, args=args)
    out = np.asarray(result.simulate([a, b]).outputs[0])
    assert np.allclose(out, a @ b, atol=1e-9, rtol=1e-9)


@given(st.integers(min_value=1, max_value=24),
       st.integers(min_value=1, max_value=24))
@settings(max_examples=25, deadline=None)
def test_slice_copy_equivalent(start, count):
    total = start + count + 3
    source = f"function y = f(x)\ny = x({start}:{start + count - 1});\nend"
    args = [arg((1, total))]
    x = np.arange(float(total)).reshape(1, -1)
    result = compile_source(source, args=args)
    out = np.asarray(result.simulate([x]).outputs[0]).ravel()
    assert np.allclose(out, x.ravel()[start - 1:start - 1 + count])
