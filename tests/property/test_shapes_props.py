"""Property-based algebraic laws of the shape lattice."""

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.shapes import SCALAR, Shape

dims = st.one_of(st.none(), st.integers(min_value=0, max_value=64))
shapes = st.builds(Shape, dims, dims)
concrete = st.builds(Shape, st.integers(1, 16), st.integers(1, 16))


@given(shapes)
def test_join_idempotent(shape):
    assert shape.join(shape) == shape


@given(shapes, shapes)
def test_join_commutative(a, b):
    assert a.join(b) == b.join(a)


@given(shapes, shapes, shapes)
def test_join_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@given(concrete)
def test_transpose_involution(shape):
    assert shape.transpose().transpose() == shape


@given(concrete)
def test_elementwise_with_scalar_is_identity(shape):
    assert SCALAR.elementwise(shape) == shape
    assert shape.elementwise(SCALAR) == shape


@given(concrete, concrete)
def test_elementwise_commutative(a, b):
    assert a.elementwise(b) == b.elementwise(a)


@given(concrete)
def test_elementwise_self_is_identity(shape):
    assert shape.elementwise(shape) == shape


@given(concrete, concrete)
def test_matmul_dims(a, b):
    result = a.matmul(b)
    if a.is_scalar or b.is_scalar:
        assert result is not None
    elif a.cols == b.rows:
        assert result == Shape(a.rows, b.cols)
    else:
        assert result is None


@given(concrete, concrete)
def test_hcat_preserves_rows_adds_cols(a, b):
    merged = a.hcat(b)
    if a.rows == b.rows:
        assert merged == Shape(a.rows, a.cols + b.cols)
        assert merged.numel() == a.numel() + b.numel()
    else:
        assert merged is None


@given(concrete, concrete)
def test_vcat_transpose_duality(a, b):
    # vcat(a, b) == hcat(a', b')'
    direct = a.vcat(b)
    via_transpose = a.transpose().hcat(b.transpose())
    if direct is None:
        assert via_transpose is None
    else:
        assert via_transpose.transpose() == direct


@given(concrete)
def test_numel_length_consistency(shape):
    assert shape.numel() == shape.rows * shape.cols
    assert shape.length() == max(shape.rows, shape.cols)


@given(shapes)
def test_join_is_upper_bound(shape):
    unknown = Shape(None, None)
    assert shape.join(unknown) == unknown
