"""Property-based tests for the shared range fencepost arithmetic.

``repro.numeric.range_count`` is the single source of truth for MATLAB
colon lengths — the compile-time shape inferencer and the runtime
``colon()`` builtin both call it, so a defect here silently desyncs
compiled code from the golden interpreter.  ``numpy.arange`` with an
inclusive-stop adjustment is an independent oracle on exact integer
grids; floating grids get bracketing and scale-invariance laws instead
(exact equality is not defined there — that's the whole reason the
tolerance exists).
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mlab.builtins_rt import colon
from repro.numeric import range_count

integer_grids = st.tuples(
    st.integers(min_value=-1000, max_value=1000),   # start
    st.integers(min_value=-50, max_value=50)        # step
    .filter(lambda s: s != 0),
    st.integers(min_value=-1000, max_value=1000))   # stop


def _arange_inclusive(start: int, step: int, stop: int) -> np.ndarray:
    """numpy oracle for MATLAB ``start:step:stop`` on integer grids."""
    return np.arange(start, stop + (1 if step > 0 else -1), step,
                     dtype=np.float64)


@given(integer_grids)
def test_integer_grid_count_matches_arange(grid):
    start, step, stop = grid
    oracle = _arange_inclusive(start, step, stop)
    assert range_count(float(start), float(step), float(stop)) \
        == len(oracle)


@given(integer_grids)
def test_colon_values_match_arange_on_integer_grids(grid):
    start, step, stop = grid
    oracle = _arange_inclusive(start, step, stop).reshape(1, -1)
    produced = colon(float(start), float(step), float(stop))
    assert produced.shape == oracle.shape
    assert np.array_equal(produced, oracle)


@given(integer_grids, st.integers(min_value=-20, max_value=20))
def test_count_invariant_under_exact_scaling(grid, exponent):
    # Scaling start/step/stop by a power of two is exact in binary
    # floating point, so the element count must not change.
    start, step, stop = grid
    scale = 2.0 ** exponent
    assert range_count(start * scale, step * scale, stop * scale) \
        == range_count(float(start), float(step), float(stop))


finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
steps = st.floats(min_value=1e-3, max_value=1e3,
                  allow_nan=False, allow_infinity=False) \
    | st.floats(min_value=-1e3, max_value=-1e-3,
                allow_nan=False, allow_infinity=False)


@given(finite, steps, finite)
@settings(max_examples=200)
def test_count_brackets_the_exact_quotient(start, step, stop):
    quotient = (stop - start) / step
    count = range_count(start, step, stop)
    assert count >= 0
    if quotient < -0.5:
        assert count == 0
    elif quotient >= 0:
        # count = floor(q + tol) + 1 with 0 <= tol <= 0.25, hence:
        assert quotient < count <= quotient + 1.25 + 1e-9


@given(finite, steps, finite)
@settings(max_examples=200)
def test_colon_length_and_spacing_agree_with_count(start, step, stop):
    # Bound the materialized length: correctness of the fencepost does
    # not depend on allocating multi-megabyte ranges.
    assume(abs((stop - start) / step) < 1e4)
    produced = colon(start, step, stop)
    count = range_count(start, step, stop)
    assert produced.shape == (1, count) or \
        (count == 0 and produced.shape == (1, 0))
    if count:
        expected = start + step * np.arange(count, dtype=np.float64)
        assert np.array_equal(produced.ravel(), expected)


def test_degenerate_ranges_are_empty():
    assert range_count(0.0, 0.0, 5.0) == 0
    assert range_count(float("nan"), 1.0, 5.0) == 0
    assert range_count(5.0, 1.0, 0.0) == 0
    assert colon(5.0, 1.0, 0.0).shape == (1, 0)
