"""Property tier for Pareto dominance and front computation.

These pin the algebra ``repro-dse`` leans on: dominance is a strict
partial order (irreflexive, antisymmetric, transitive), the front is
exactly the non-dominated subset, every point off the front is
dominated by someone on it, and the front is a pure function of the
score *set* — invariant under permutation of evaluation order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import dominates, pareto_front

# Small integer grids force plenty of exact ties and duplicate scores,
# the cases a float-only strategy would almost never generate.
_speed = st.one_of(st.integers(min_value=0, max_value=6).map(float),
                   st.floats(min_value=0.1, max_value=8.0,
                             allow_nan=False, allow_infinity=False))
_cost = st.integers(min_value=0, max_value=9)

_point = st.tuples(_speed, _cost)
_points = st.lists(
    st.tuples(_speed, _cost, st.integers(min_value=0, max_value=99)),
    min_size=0, max_size=24).map(
        lambda rows: [(s, c, f"p{i}-{tag}")
                      for i, (s, c, tag) in enumerate(rows)])


@given(_point)
@settings(max_examples=100, deadline=None)
def test_dominance_irreflexive(a):
    assert not dominates(a, a)


@given(_point, _point)
@settings(max_examples=200, deadline=None)
def test_dominance_antisymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(_point, _point, _point)
@settings(max_examples=300, deadline=None)
def test_dominance_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@given(_points)
@settings(max_examples=200, deadline=None)
def test_front_is_exactly_the_nondominated_subset(points):
    front = pareto_front(points)
    front_set = set(front)
    for point in front:
        assert not any(dominates(other, point) for other in points)
    # Completeness: every non-dominated point made the front, and
    # every point off the front is dominated by a front member.
    for point in points:
        if not any(dominates(other, point) for other in points):
            assert point in front_set
        elif point not in front_set:
            assert any(dominates(member, point) for member in front)


@given(_points, st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_front_invariant_under_evaluation_order(points, rng):
    shuffled = list(points)
    rng.shuffle(shuffled)
    assert pareto_front(shuffled) == pareto_front(points)


@given(_points)
@settings(max_examples=100, deadline=None)
def test_front_idempotent_and_canonically_ordered(points):
    front = pareto_front(points)
    assert pareto_front(front) == front
    keys = [(cost, -speed, name) for speed, cost, name in front]
    assert keys == sorted(keys)
