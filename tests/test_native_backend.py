"""Native execution tier: differential correctness, caching, flags.

Four groups of guards:

* every E1 benchmark kernel produces golden-identical outputs through
  ``simulate(backend="native")`` (versus the interpreter, the reference
  simulator, and the compiled-closure backend);
* the fuzz corpus and a 100-seed sweep run clean through the oracle's
  native gcc harness;
* caching: a second native simulation of the same program performs
  **zero** compiler invocations (in-memory and on-disk layers), and
  ``DifferentialOracle.run_points`` builds once per program however
  many input points it judges;
* the compile/link flag split keeps ``-lm`` after the source files.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from helpers import requires_gcc
from repro.backend import harness
from repro.compiler import compile_source
from repro.errors import BackendError, SimulationError
from repro.fuzz import DifferentialOracle, ProgramGenerator
from repro.fuzz.reducer import load_reproducer
from repro.native import builder as native_builder
from repro.native import NativeCache, NativeProgram, native_cache_key

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
from workloads import default_workloads, workload_by_name  # noqa: E402

CORPUS = Path(__file__).parent / "fuzz_corpus"
KERNELS = [w.name for w in default_workloads()]


@pytest.fixture
def fresh_native_cache(tmp_path):
    """Point the process-wide native cache at an empty directory for
    one test, restoring the previous cache afterwards."""
    saved = native_builder._default_cache
    cache = native_builder.configure(cache_dir=tmp_path / "native")
    yield cache
    native_builder._default_cache = saved


def _count_gcc_calls(monkeypatch):
    """Count subprocess launches made by the native builder."""
    calls = []
    real_run = native_builder.subprocess.run

    def counting_run(cmd, *args, **kwargs):
        calls.append(list(cmd))
        return real_run(cmd, *args, **kwargs)

    monkeypatch.setattr(native_builder.subprocess, "run", counting_run)
    return calls


# ---------------------------------------------------------------------------
# Differential: every E1 kernel, native vs golden vs both simulators


@requires_gcc
@pytest.mark.parametrize("kernel", KERNELS)
def test_native_matches_golden_and_simulators(kernel):
    workload = workload_by_name(kernel)
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry,
                            processor="vliw_simd_dsp")
    inputs = workload.inputs(seed=3)
    golden = workload.golden(inputs)

    native = result.simulate(list(inputs), backend="native")
    reference = result.simulate(list(inputs), backend="reference")
    compiled = result.simulate(list(inputs), backend="compiled")

    # Scalar outputs come back as bare Python scalars from every
    # backend (the golden interpreter keeps them 1x1); canonicalize to
    # 2-D before comparing, like the fuzz oracle does.
    produced = np.atleast_2d(np.asarray(native.outputs[0]))
    assert produced.shape == np.atleast_2d(np.asarray(golden)).shape
    assert type(native.outputs[0]) is type(reference.outputs[0]), \
        f"{kernel}: native output type differs from the simulators"
    for label, other in (("golden", golden),
                         ("reference", reference.outputs[0]),
                         ("compiled", compiled.outputs[0])):
        assert np.allclose(produced, np.atleast_2d(np.asarray(other)),
                           atol=workload.tolerance,
                           rtol=workload.tolerance), \
            f"{kernel}: native output diverges from {label}"

    # The native tier does no cycle accounting by design.
    assert native.report.total == 0


@requires_gcc
def test_native_rejects_hotspot_profiling():
    workload = workload_by_name("fir")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    with pytest.raises(ValueError, match="hotspot"):
        result.simulate(list(workload.inputs()), backend="native",
                        hotspots=True)


@requires_gcc
def test_native_arity_and_shape_errors():
    workload = workload_by_name("fir")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    program = result.native_program()
    with pytest.raises(SimulationError, match="expected 2 arguments"):
        program.run([workload.inputs()[0]])
    bad = [np.zeros((1, 7), np.float32), workload.inputs()[1]]
    with pytest.raises(SimulationError, match="elements"):
        program.run(bad)


def test_native_missing_compiler_is_backend_error():
    workload = workload_by_name("fir")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    with pytest.raises(BackendError, match="host C compiler"):
        result.native_program(cc="no-such-cc-binary")


# ---------------------------------------------------------------------------
# Fuzz-oracle harness: corpus replay and a seed sweep


@requires_gcc
@pytest.mark.parametrize("name",
                         sorted(p.stem for p in CORPUS.glob("*.m")))
def test_corpus_replays_through_native_harness(name):
    prog, _ = load_reproducer(CORPUS, name)
    oracle = DifferentialOracle(harness="native")
    verdict = oracle.run(prog)
    assert verdict.ok, \
        f"{name}: {verdict.status} ({verdict.engine}): {verdict.detail}"


@requires_gcc
def test_fuzz_sweep_through_native_harness():
    """100 generated seeds through compiled + native-gcc engines: no
    divergences, no crashes."""
    oracle = DifferentialOracle(engines=["compiled", "gcc"],
                                harness="native")
    assert oracle.harness == "native"
    statuses = {"ok": 0, "skip": 0}
    for seed in range(100):
        verdict = oracle.run(ProgramGenerator(seed).generate())
        assert not verdict.interesting, \
            f"seed {seed}: {verdict.status} ({verdict.engine}): " \
            f"{verdict.detail}"
        statuses[verdict.status] += 1
    assert statuses["ok"] >= 90, f"too many skips: {statuses}"


def test_unknown_harness_rejected():
    with pytest.raises(ValueError, match="harness"):
        DifferentialOracle(harness="telnet")


# ---------------------------------------------------------------------------
# Caching: warm paths perform zero compiler invocations


@requires_gcc
def test_second_native_simulate_runs_no_compiler(fresh_native_cache,
                                                 monkeypatch):
    workload = workload_by_name("matmul")
    # use_cache=False: the compilation cache would otherwise hand back
    # a result object from an earlier test with its NativeProgram (and
    # loaded .so) already attached.
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry, use_cache=False)
    inputs = workload.inputs(seed=5)
    calls = _count_gcc_calls(monkeypatch)

    first = result.simulate(list(inputs), backend="native")
    assert len(calls) == 1, "first native simulate must build once"

    second = result.simulate(list(inputs), backend="native")
    assert len(calls) == 1, \
        "second native simulate must hit the cache (zero gcc runs)"
    assert np.array_equal(np.asarray(first.outputs[0]),
                          np.asarray(second.outputs[0]))

    # A *fresh* compilation of the same source hits the in-memory
    # loaded-library table through the shared default cache.
    again = compile_source(workload.source, args=workload.arg_types,
                           entry=workload.entry, use_cache=False)
    again.simulate(list(inputs), backend="native")
    assert len(calls) == 1
    stats = fresh_native_cache.stats()
    assert stats["builds"] == 1
    assert stats["cache_hits"] >= 1


@requires_gcc
def test_disk_cache_shared_across_cache_instances(tmp_path, monkeypatch):
    """A second NativeCache over the same directory dlopens the published
    artifact instead of rebuilding (the cross-process warm path)."""
    workload = workload_by_name("fir")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    calls = _count_gcc_calls(monkeypatch)

    first = NativeCache(cache_dir=tmp_path)
    NativeProgram(result.module, result.processor, cache=first)
    assert len(calls) == 1

    second = NativeCache(cache_dir=tmp_path)
    program = NativeProgram(result.module, result.processor, cache=second)
    assert len(calls) == 1, "published .so must be reused, not rebuilt"
    assert second.stats()["disk_hits"] == 1

    inputs = workload.inputs(seed=1)
    out = program.run(list(inputs)).outputs[0]
    assert np.allclose(np.asarray(out), workload.golden(inputs),
                       atol=workload.tolerance, rtol=workload.tolerance)


@requires_gcc
def test_warm_publishes_without_loading(tmp_path):
    from repro.native.abi import native_source
    workload = workload_by_name("fir")
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    source = native_source(result.module, result.processor)
    cache = NativeCache(cache_dir=tmp_path)
    assert cache.warm(source) is True
    assert cache.warm(source) is False      # already published
    key = native_cache_key(source, "gcc")
    assert (tmp_path / key[:2] / f"{key}.so").is_file()
    assert cache.stats()["loaded"] == 0


@requires_gcc
def test_disk_eviction_keeps_newest(tmp_path):
    cache = NativeCache(cache_dir=tmp_path, disk_limit=2)
    import os
    import time
    sources = []
    for index in range(3):
        src = ("int repro_probe_%d(void) { return %d; }\n"
               % (index, index))
        cache.warm(src)
        key = native_cache_key(src, "gcc")
        path = tmp_path / key[:2] / f"{key}.so"
        stamp = time.time() - (10 - index)
        os.utime(path, (stamp, stamp))
        sources.append((src, path))
    # Trigger one more eviction sweep via a fourth build.
    cache.warm("int repro_probe_last(void) { return 9; }\n")
    survivors = sorted(tmp_path.glob("*/*.so"))
    assert len(survivors) == 2
    assert not sources[0][1].is_file(), "oldest artifact must be evicted"
    assert cache.stats()["evictions"] >= 2


@requires_gcc
def test_run_points_compiles_once(fresh_native_cache, monkeypatch):
    prog = ProgramGenerator(0).generate()
    oracle = DifferentialOracle(engines=["compiled", "gcc"],
                                harness="native")
    calls = _count_gcc_calls(monkeypatch)
    verdicts = oracle.run_points(prog, [prog.inputs() for _ in range(4)])
    assert len(verdicts) == 4
    assert all(v.ok for v in verdicts), \
        [(v.status, v.detail) for v in verdicts]
    assert len(calls) == 1, \
        "run_points must compile one .so for the whole point set"


@requires_gcc
def test_exec_harness_still_works():
    prog = ProgramGenerator(0).generate()
    oracle = DifferentialOracle(engines=["gcc"], harness="exec")
    verdict = oracle.run(prog)
    assert verdict.ok, f"{verdict.status}: {verdict.detail}"


# ---------------------------------------------------------------------------
# Flag split (satellite): -lm stays after the sources


def test_flag_split_contract():
    assert harness.DEFAULT_FLAGS == [*harness.COMPILE_FLAGS,
                                     *harness.LINK_FLAGS]
    assert "-lm" in harness.LINK_FLAGS
    assert not any(f.startswith("-l") for f in harness.COMPILE_FLAGS)
    compile_, link = harness.split_flags(["-std=c89", "-lm", "-O1"])
    assert compile_ == ["-std=c89", "-O1"]
    assert link == ["-lm"]
    # The .so build shares the strict-ANSI contract.
    assert set(harness.STRICT_FLAGS) <= set(native_builder.SO_COMPILE_FLAGS)


def test_cache_key_sensitivity():
    base = native_cache_key("int x;", "gcc")
    assert native_cache_key("int y;", "gcc") != base
    assert native_cache_key("int x;", "clang") != base
    assert native_cache_key("int x;", "gcc",
                            compile_flags=["-O3"]) != base
    assert native_cache_key("int x;", "gcc") == base
