"""Unit tests for the cycle-accurate IR executor."""

import numpy as np
import pytest

from repro.asip.isa_library import generic_scalar_dsp, vliw_simd_dsp
from repro.compiler import CompilerOptions, arg, compile_source
from repro.errors import SimulationError
from repro.ir.types import ScalarKind, ScalarType
from repro.sim.cost import CostModel, CycleReport
from repro.sim.machine import Simulator

F64 = ScalarType(ScalarKind.F64)
C128 = ScalarType(ScalarKind.C128)


def run_program(source, args, inputs, processor=None, options=None):
    result = compile_source(source, args=args,
                            processor=processor or "vliw_simd_dsp",
                            options=options)
    return result.simulate(list(inputs))


# ----------------------------------------------------------------------
# Numeric semantics
# ----------------------------------------------------------------------


def test_round_half_away_from_zero():
    src = "function y = f(x)\ny = round(x);\nend"
    for value, expected in [(2.5, 3.0), (-2.5, -3.0), (2.4, 2.0),
                            (-0.5, -1.0)]:
        run = run_program(src, [arg()], [value])
        assert run.outputs[0] == expected


def test_fix_truncates_toward_zero():
    src = "function y = f(x)\ny = fix(x);\nend"
    assert run_program(src, [arg()], [2.7]).outputs[0] == 2.0
    assert run_program(src, [arg()], [-2.7]).outputs[0] == -2.0


def test_mod_follows_matlab_sign_rules():
    src = "function y = f(a, b)\ny = mod(a, b);\nend"
    assert run_program(src, [arg(), arg()], [5.0, 3.0]).outputs[0] == 2.0
    assert run_program(src, [arg(), arg()], [-5.0, 3.0]).outputs[0] == 1.0
    assert run_program(src, [arg(), arg()], [5.0, -3.0]).outputs[0] == -1.0


def test_rem_keeps_dividend_sign():
    src = "function y = f(a, b)\ny = rem(a, b);\nend"
    assert run_program(src, [arg(), arg()], [-5.0, 3.0]).outputs[0] == -2.0


def test_division_by_zero_gives_inf():
    src = "function y = f(a)\ny = a / 0;\nend"
    assert run_program(src, [arg()], [1.0]).outputs[0] == float("inf")
    assert run_program(src, [arg()], [-1.0]).outputs[0] == float("-inf")


def test_integer_cast_truncates_toward_zero():
    src = """
function y = f(a)
v = zeros(1, 3);
v(1) = 10; v(2) = 20; v(3) = 30;
y = v(int32(a));
end
"""
    # int32() rounds in MATLAB; our compiler documents round-half-away.
    assert run_program(src, [arg()], [2.4]).outputs[0] == 20.0


def test_complex_arithmetic():
    src = "function y = f(a, b)\ny = (a * b) + conj(a) / b;\nend"
    a, b = 1 + 2j, 3 - 1j
    run = run_program(src, [arg(complex=True), arg(complex=True)], [a, b])
    expected = a * b + np.conj(a) / b
    assert abs(run.outputs[0] - expected) < 1e-12


def test_abs_and_angle_of_complex():
    src = "function [m, p] = f(z)\nm = abs(z);\np = angle(z);\nend"
    result = compile_source(src, args=[arg(complex=True)])
    run = result.simulate([3 + 4j])
    assert run.outputs[0] == pytest.approx(5.0)
    assert run.outputs[1] == pytest.approx(np.angle(3 + 4j))


def test_logical_short_circuit():
    # The right side would divide by zero; && must not evaluate it...
    # (both simulator and C use short-circuit semantics).
    src = "function y = f(a)\nif a > 0 && 1 / a > 0.5\ny = 1;\nelse\n" \
          "y = 0;\nend\nend"
    assert run_program(src, [arg()], [1.0]).outputs[0] == 1.0
    assert run_program(src, [arg()], [0.0]).outputs[0] == 0.0


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------


def test_while_loop_execution():
    src = """
function n = f(x)
n = 0;
while x > 1
    x = x / 2;
    n = n + 1;
end
end
"""
    assert run_program(src, [arg()], [64.0]).outputs[0] == 6.0


def test_nested_loop_break_only_inner():
    src = """
function s = f()
s = 0;
for i = 1:3
    for j = 1:10
        if j > 2
            break
        end
        s = s + 1;
    end
end
end
"""
    assert run_program(src, [], []).outputs[0] == 6.0


def test_loop_variable_final_value():
    src = "function y = f()\nfor k = 1:5\nend\ny = k;\nend"
    assert run_program(src, [], []).outputs[0] == 5.0


def test_negative_step_loop():
    src = """
function s = f()
s = 0;
for k = 10:-2:1
    s = s + k;
end
end
"""
    assert run_program(src, [], []).outputs[0] == 30.0  # 10+8+6+4+2


def test_emit_output_captured():
    src = "function f(x)\nfprintf('value %.1f!\\n', x);\nend"
    run = run_program(src, [arg()], [2.5])
    assert run.stdout == "value 2.5!\n"


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------


def test_out_of_bounds_read_detected():
    src = "function y = f(x, i)\ny = x(i);\nend"
    result = compile_source(src, args=[arg((1, 4)), arg()])
    with pytest.raises(SimulationError, match="out of bounds"):
        result.simulate([np.zeros((1, 4)), 9.0])


def test_out_of_bounds_write_detected():
    src = "function y = f(i)\ny = zeros(1, 4);\ny(i) = 1;\nend"
    result = compile_source(src, args=[arg()])
    with pytest.raises(SimulationError, match="out of bounds"):
        result.simulate([7.0])


def test_wrong_argument_count_detected():
    src = "function y = f(a, b)\ny = a + b;\nend"
    result = compile_source(src, args=[arg(), arg()])
    with pytest.raises(SimulationError, match="expected 2"):
        result.simulate([1.0])


def test_wrong_array_size_detected():
    src = "function y = f(x)\ny = sum(x);\nend"
    result = compile_source(src, args=[arg((1, 8))])
    with pytest.raises(SimulationError, match="expected 8"):
        result.simulate([np.zeros((1, 4))])


def test_infinite_loop_guard():
    src = "function y = f()\ny = 0;\nwhile 1 > 0\ny = y + 1;\nend\nend"
    result = compile_source(src, args=[])
    simulator = Simulator(result.module, result.processor, max_steps=10000)
    with pytest.raises(SimulationError, match="step limit"):
        simulator.run([])


# ----------------------------------------------------------------------
# Cycle accounting
# ----------------------------------------------------------------------


def test_cycles_scale_with_trip_count():
    src = """
function s = f(x)
s = 0;
for k = 1:length(x)
    s = s + x(k);
end
end
"""
    options = CompilerOptions.baseline()
    small = run_program(src, [arg((1, 16))], [np.ones((1, 16))],
                        options=options).report.total
    large = run_program(src, [arg((1, 64))], [np.ones((1, 64))],
                        options=options).report.total
    assert 3.0 < large / small < 5.0  # ~4x work


def test_complex_multiply_costs_more_than_real():
    cost = CostModel(generic_scalar_dsp())
    assert cost.binop("mul", C128) > cost.binop("mul", F64)
    assert cost.binop("add", C128) == 2 * cost.binop("add", F64)


def test_report_breakdown_sums_to_total():
    run = run_program("function y = f(x)\ny = sqrt(x) + 1;\nend",
                      [arg()], [4.0])
    assert sum(run.report.by_category.values()) == run.report.total


def test_report_merge():
    a = CycleReport()
    a.charge("alu", 5)
    a.count_instruction("vmac")
    b = CycleReport()
    b.charge("alu", 3)
    b.charge("mem", 2)
    a.merge(b)
    assert a.total == 10
    assert a.by_category == {"alu": 8, "mem": 2}


def test_intrinsic_cycles_charged():
    src = """
function s = f(a, b)
s = 0;
for k = 1:8
    s = s + a(k) * b(k);
end
end
"""
    result = compile_source(src, args=[arg((1, 8)), arg((1, 8))],
                            options=CompilerOptions(simd=False))
    run = result.simulate([np.ones((1, 8)), np.ones((1, 8))])
    mac = result.processor.instruction_by_name("mac_f64")
    assert run.report.by_category["intrinsic"] == 8 * mac.cycles


def test_column_major_input_flattening():
    src = "function y = f(A)\ny = A(2);\nend"  # linear index 2 = row 2 col 1
    result = compile_source(src, args=[arg((2, 2))])
    a = np.array([[1.0, 3.0], [2.0, 4.0]])
    assert result.simulate([a]).outputs[0] == 2.0


def test_outputs_reshaped_to_matlab_shape():
    src = "function A = f()\nA = zeros(2, 3);\nA(2, 3) = 7;\nend"
    result = compile_source(src, args=[])
    out = result.simulate([]).outputs[0]
    assert out.shape == (2, 3)
    assert out[1, 2] == 7.0
