function y = f(z)
  m = mag2(z);
  y = sum(m);
end

function r = mag2(w)
  r = real(w .* conj(w));
end
