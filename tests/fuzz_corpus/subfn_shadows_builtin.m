function y = f(x)
  y = sum(x);
end

function s = sum(v)
  s = v(1) .* 100;
end
