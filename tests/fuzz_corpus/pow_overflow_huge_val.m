function v = f(x)
  v = x;
  for k = 1:8
    v = v .^ 3;
  end
end
