function y = f(x, n)
  y = geo(x, n);
end

function s = geo(v, n)
  s = 0;
  k = 1;
  while k <= n
    s = s + sum(v) ./ (2 .^ k);
    k = k + 1;
  end
end
