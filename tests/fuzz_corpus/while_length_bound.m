function s = f(v)
  s = 0;
  k = 1;
  while k <= length(v)
    s = s + v(k) .* k;
    k = k + 1;
  end
end
