function b = f(a)
  b = a;
  i = 1;
  while i <= 2
    j = 1;
    while j <= 3
      b(i, j) = b(i, j) .* i + j;
      j = j + 1;
    end
    i = i + 1;
  end
end
