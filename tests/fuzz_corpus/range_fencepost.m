function [n, m] = f()
  n = length(0:1:(5 - 1e-11));
  m = length(0:0.1:1);
end
