function d = f()
  a = [];
  a(2) = 2i;
  d = imag(a(2));
end
