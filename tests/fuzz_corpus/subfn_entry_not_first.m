function r = helper(v)
  r = v .* v;
end

function y = f(x)
  y = sum(helper(x));
end
