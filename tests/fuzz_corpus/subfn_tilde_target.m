function y = f(x)
  [~, d] = two(x, x);
  y = sum(d);
end

function [s, d] = two(a, b)
  s = a + b;
  d = a - (b .* 0.5);
end
