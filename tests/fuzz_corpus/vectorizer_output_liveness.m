function v1 = f(p0)
  v1 = 0;
  for k4 = 1:4
    v1 = p0(end - 4);
  end
end
