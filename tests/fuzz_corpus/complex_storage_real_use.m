function w = f(c)
  v = -3;
  w = sign(v);
  if c > 0
    v = 2i;
  end
  w = w + real(v);
end
