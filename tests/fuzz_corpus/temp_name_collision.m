function v2 = f()
  v2 = 1;
  for k4 = 1:3
    v2 = (v2 .* k4) - sum(zeros(1, 3));
  end
end
