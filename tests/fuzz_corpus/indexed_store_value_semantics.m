function [q, a] = f()
  a = [1, 2; 3, 4];
  q = a;
  q(1, 2) = 53;
end
