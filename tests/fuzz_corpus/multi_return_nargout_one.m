function y = f(x)
  v = two(x, x);
  y = v + 1;
end

function [r1, r2] = two(a, b)
  r1 = a + b;
  r2 = a - b;
end
