function v = f()
  v = [1, 2, 3, 4];
  v = [v(2), v(1), v(4), v(3)];
end
