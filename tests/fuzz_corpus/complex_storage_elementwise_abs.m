function y = f(z, c)
  v = sin(z);
  if c > 0
    v = fix(abs(v));
  else
    v = single(complex(z, z));
  end
  y = real(v(2));
end
