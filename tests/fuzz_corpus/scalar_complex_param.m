function w = f(a)
  w = a + 2i;
end
