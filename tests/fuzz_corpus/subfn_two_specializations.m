function y = f(a, b)
  u = axpy(a, a);
  w = axpy(b, b);
  y = sum(u) + w;
end

function r = axpy(p, q)
  r = (p .* 2) + q;
end
