function s = f(z)
  s = sum(z);
end
