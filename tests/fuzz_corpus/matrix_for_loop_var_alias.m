function [s, a] = f()
  a = [1, 2; 3, 4];
  s = 0;
  for v = a
    v = v + 100;
    s = s + v(1) + v(2);
  end
end
