"""Integer (fixed-point-style) kernel support.

DSP ASIPs are predominantly integer machines; the ISA library carries
i16/i32 SIMD groups.  These tests cover MATLAB's integer-dominance
promotion rule, int16/int32 lowering, and SIMD selection on integer
loops.  Arithmetic stays within range everywhere — the compiled code
has C wrap-around semantics, not MATLAB saturation (documented subset
deviation).
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir.verifier import verify_module
from repro.semantics.inference import specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType
from repro.frontend.parser import parse


def int_row(n, dtype="int16"):
    return arg((1, n), dtype=dtype)


def test_integer_dominates_double_literal():
    src = "function y = f(x)\ny = x * 2 + 1;\nend"
    sp = specialize_program(parse(src), "f",
                            [MType(DType.INT16, False, Shape(1, 4))])
    assert sp.entry.result_types[0].dtype is DType.INT16


def test_integer_division_promotes_to_double():
    src = "function y = f(x)\ny = x ./ 2;\nend"
    sp = specialize_program(parse(src), "f",
                            [MType(DType.INT32, False, Shape(1, 4))])
    assert sp.entry.result_types[0].dtype is DType.DOUBLE


def test_int16_scale_kernel_vectorizes():
    src = """
function y = f(x, c)
y = int16(zeros(1, length(x)));
for k = 1:length(x)
    y(k) = x(k) * c + 1;
end
end
"""
    result = compile_source(src, args=[int_row(64), arg(value=3.0)])
    verify_module(result.module)
    x = np.arange(-32, 32, dtype=np.int16).reshape(1, -1)
    run = result.simulate([x, 3.0])
    assert run.report.instruction_counts.get("vmac_i16x8", 0) > 0 or \
        run.report.instruction_counts.get("vmul_i16x8", 0) > 0
    expected = x.astype(np.int64) * 3 + 1
    assert np.array_equal(run.outputs[0].astype(np.int64), expected)


def test_int32_accumulator_dot():
    src = """
function s = f(a, b)
s = int32(0);
for k = 1:length(a)
    s = s + a(k) * b(k);
end
end
"""
    result = compile_source(src, args=[int_row(32, "int32"),
                                       int_row(32, "int32")])
    rng = np.random.default_rng(0)
    a = rng.integers(-50, 50, size=(1, 32)).astype(np.int32)
    b = rng.integers(-50, 50, size=(1, 32)).astype(np.int32)
    run = result.simulate([a, b])
    assert run.outputs[0] == int(np.sum(a.astype(np.int64) *
                                        b.astype(np.int64)))
    assert run.report.instruction_counts.get("vmac_i32x8", 0) > 0


def test_int16_input_output_roundtrip():
    src = "function y = f(x)\ny = x;\nend"
    result = compile_source(src, args=[int_row(8)])
    x = np.array([[1, -2, 3, -4, 5, -6, 7, -8]], dtype=np.int16)
    out = result.simulate([x]).outputs[0]
    assert out.dtype == np.int16
    assert np.array_equal(out, x)


def test_int16_gcc_roundtrip():
    import shutil
    if shutil.which("gcc") is None:
        pytest.skip("gcc not available")
    from repro.backend.harness import run_via_gcc
    src = """
function y = f(x)
y = int16(zeros(1, 12));
for k = 1:12
    y(k) = x(k) * 2 - 3;
end
end
"""
    result = compile_source(src, args=[int_row(12)])
    x = np.arange(12, dtype=np.int16).reshape(1, -1)
    out = run_via_gcc(result, [x])
    assert np.array_equal(np.asarray(out[0], dtype=np.int64),
                          x.astype(np.int64) * 2 - 3)


def test_mixed_int_float_loop_not_vectorized():
    src = """
function y = f(x, w)
y = zeros(1, 16);
for k = 1:16
    y(k) = double(x(k)) * w(k);
end
end
"""
    result = compile_source(src, args=[int_row(16), arg((1, 16))])
    rng = np.random.default_rng(1)
    x = rng.integers(-10, 10, size=(1, 16)).astype(np.int16)
    w = rng.standard_normal((1, 16))
    run = result.simulate([x, w])
    expected = x.astype(np.float64) * w
    assert np.allclose(np.asarray(run.outputs[0]), expected)


def test_baseline_and_optimized_agree_on_int_kernel():
    src = """
function s = f(x)
s = int32(0);
for k = 1:length(x)
    s = s + x(k) * x(k);
end
end
"""
    args = [int_row(48, "int32")]
    rng = np.random.default_rng(2)
    x = rng.integers(-30, 30, size=(1, 48)).astype(np.int32)
    optimized = compile_source(src, args=args)
    baseline = compile_source(src, args=args,
                              options=CompilerOptions.baseline())
    assert optimized.simulate([x]).outputs[0] == \
        baseline.simulate([x]).outputs[0]
