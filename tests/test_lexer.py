"""Unit tests for the MATLAB lexer."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as K


def kinds(source: str) -> list:
    return [t.kind for t in tokenize(source) if t.kind is not K.EOF]


def texts(source: str) -> list:
    return [t.text for t in tokenize(source) if t.kind is not K.EOF]


def one(source: str):
    tokens = [t for t in tokenize(source)
              if t.kind not in (K.EOF, K.NEWLINE)]
    assert len(tokens) == 1, tokens
    return tokens[0]


# ----------------------------------------------------------------------
# Numbers
# ----------------------------------------------------------------------


def test_integer_literal():
    token = one("42")
    assert token.kind is K.INT_NUMBER
    assert token.value == 42


def test_float_literal():
    token = one("3.25")
    assert token.kind is K.NUMBER
    assert token.value == 3.25


def test_leading_dot_float():
    token = one(".5")
    assert token.kind is K.NUMBER
    assert token.value == 0.5


def test_trailing_dot_float():
    token = one("5.")
    assert token.kind is K.NUMBER
    assert token.value == 5.0


def test_exponent_forms():
    assert one("1e3").value == 1000.0
    assert one("1E-3").value == 0.001
    assert one("2.5e+2").value == 250.0


def test_fortran_style_exponent():
    # MATLAB accepts 1d3 as 1e3.
    assert one("1d3").value == 1000.0


def test_imaginary_literals():
    for text, value in [("3i", 3.0), ("2.5j", 2.5), ("1e2i", 100.0)]:
        token = one(text)
        assert token.kind is K.IMAG_NUMBER
        assert token.value == value


def test_number_followed_by_identifier_not_imaginary():
    # '3in' is number 3 followed by identifier 'in', not 3i + n.
    tokens = kinds("3in")
    assert tokens == [K.INT_NUMBER, K.IDENT]


def test_dot_caret_after_integer():
    # '1.^2' lexes the dot as part of the operator.
    assert kinds("1.^2") == [K.INT_NUMBER, K.DOT_CARET, K.INT_NUMBER]


def test_dot_quote_after_integer():
    assert kinds("x = 1.'") == [K.IDENT, K.ASSIGN, K.INT_NUMBER, K.DOT_QUOTE]


# ----------------------------------------------------------------------
# Strings vs transpose
# ----------------------------------------------------------------------


def test_string_literal():
    token = one("'hello'")
    assert token.kind is K.STRING
    assert token.value == "hello"


def test_string_with_escaped_quote():
    assert one("'it''s'").value == "it's"


def test_empty_string():
    assert one("''").value == ""


def test_transpose_after_identifier():
    assert kinds("a'") == [K.IDENT, K.QUOTE]


def test_transpose_after_rparen_and_rbracket():
    assert kinds("(a)'")[-1] is K.QUOTE
    assert kinds("[1]'")[-1] is K.QUOTE


def test_transpose_after_number():
    assert kinds("5'") == [K.INT_NUMBER, K.QUOTE]


def test_string_after_operator():
    assert kinds("a + 'x'") == [K.IDENT, K.PLUS, K.STRING]


def test_string_after_comma_and_lparen():
    assert K.STRING in kinds("f('x')")
    assert kinds("f(a, 'x')").count(K.STRING) == 1


def test_double_transpose():
    assert kinds("a''") == [K.IDENT, K.QUOTE, K.QUOTE]


def test_space_before_quote_is_string():
    # 'a '...'': after whitespace a quote starts a string.
    tokens = kinds("a 'b'")
    assert tokens == [K.IDENT, K.STRING]


def test_unterminated_string_raises():
    with pytest.raises(LexError, match="unterminated string"):
        tokenize("'abc")


def test_string_may_not_span_lines():
    with pytest.raises(LexError, match="unterminated string"):
        tokenize("'abc\ndef'")


# ----------------------------------------------------------------------
# Comments and continuations
# ----------------------------------------------------------------------


def test_line_comment_ignored():
    assert kinds("a % comment here\nb") == [K.IDENT, K.NEWLINE, K.IDENT]


def test_block_comment_ignored():
    source = "a\n%{\nthis is\nall comment\n%}\nb"
    assert K.IDENT in kinds(source)
    assert len([k for k in kinds(source) if k is K.IDENT]) == 2


def test_nested_block_comment():
    source = "%{\n%{\ninner\n%}\nstill comment\n%}\nx"
    assert [k for k in kinds(source) if k is K.IDENT] == [K.IDENT]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError, match="unterminated block comment"):
        tokenize("%{\nno closing")


def test_percent_brace_not_alone_is_line_comment():
    # '%{' with trailing text on the line is a plain line comment.
    assert kinds("a %{ not a block\nb") == [K.IDENT, K.NEWLINE, K.IDENT]


def test_continuation_joins_lines():
    tokens = kinds("a + ...\n b")
    assert tokens == [K.IDENT, K.PLUS, K.IDENT]


def test_continuation_comment_text_ignored():
    tokens = kinds("a + ... this is ignored\n b")
    assert tokens == [K.IDENT, K.PLUS, K.IDENT]


# ----------------------------------------------------------------------
# Operators, keywords, structure
# ----------------------------------------------------------------------


def test_two_char_operators():
    source = ".* ./ .\\ .^ == ~= <= >= && ||"
    expected = [K.DOT_STAR, K.DOT_SLASH, K.DOT_BACKSLASH, K.DOT_CARET,
                K.EQ, K.NEQ, K.LE, K.GE, K.AMP_AMP, K.PIPE_PIPE]
    assert kinds(source) == expected


def test_single_char_operators():
    assert kinds("+-*/\\^<>&|~:,;()[]{}@") == [
        K.PLUS, K.MINUS, K.STAR, K.SLASH, K.BACKSLASH, K.CARET, K.LT,
        K.GT, K.AMP, K.PIPE, K.TILDE, K.COLON, K.COMMA, K.SEMICOLON,
        K.LPAREN, K.RPAREN, K.LBRACKET, K.RBRACKET, K.LBRACE, K.RBRACE,
        K.AT]


def test_keywords_recognized():
    source = "function end if elseif else for while switch case " \
             "otherwise break continue return"
    expected = [K.KW_FUNCTION, K.KW_END, K.KW_IF, K.KW_ELSEIF, K.KW_ELSE,
                K.KW_FOR, K.KW_WHILE, K.KW_SWITCH, K.KW_CASE,
                K.KW_OTHERWISE, K.KW_BREAK, K.KW_CONTINUE, K.KW_RETURN]
    assert kinds(source) == expected


def test_keyword_prefix_is_identifier():
    assert kinds("endfor forx") == [K.IDENT, K.IDENT]


def test_identifier_with_underscore_and_digits():
    token = one("my_var_2")
    assert token.kind is K.IDENT
    assert token.text == "my_var_2"


def test_newlines_are_tokens():
    assert kinds("a\nb\n") == [K.IDENT, K.NEWLINE, K.IDENT, K.NEWLINE]


def test_space_before_flag():
    tokens = tokenize("a -b")
    minus = tokens[1]
    b = tokens[2]
    assert minus.kind is K.MINUS and minus.space_before
    assert b.kind is K.IDENT and not b.space_before


def test_space_flag_both_sides():
    tokens = tokenize("a - b")
    assert tokens[1].space_before
    assert tokens[2].space_before


def test_unexpected_character_raises():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("a $ b")


def test_spans_cover_source():
    tokens = tokenize("abc = 12")
    assert tokens[0].span.start == 0 and tokens[0].span.end == 3
    assert tokens[1].span.start == 4 and tokens[1].span.end == 5
    assert tokens[2].span.start == 6 and tokens[2].span.end == 8


def test_eof_token_always_present():
    assert tokenize("")[-1].kind is K.EOF
    assert tokenize("a")[-1].kind is K.EOF
