"""Unit tests for the ``repro-mc`` command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_arg_spec
from repro.semantics.shapes import Shape
from repro.semantics.types import DType

FIR = """
function y = f(x, h)
y = conv(x, h);
end
"""


@pytest.fixture
def fir_file(tmp_path):
    path = tmp_path / "fir.m"
    path.write_text(FIR)
    return path


def test_parse_arg_spec_full():
    spec = parse_arg_spec("double:1x256")
    assert spec.dtype is DType.DOUBLE
    assert spec.shape == Shape(1, 256)


def test_parse_arg_spec_complex():
    spec = parse_arg_spec("cdouble:4x1")
    assert spec.is_complex and spec.shape == Shape(4, 1)


def test_parse_arg_spec_scalar_shorthand():
    spec = parse_arg_spec("single")
    assert spec.dtype is DType.SINGLE and spec.shape == Shape(1, 1)


def test_parse_arg_spec_errors():
    with pytest.raises(ValueError, match="dtype"):
        parse_arg_spec("quad:1x4")
    with pytest.raises(ValueError, match="shape"):
        parse_arg_spec("double:banana")


def test_list_processors(capsys):
    assert main(["--list-processors"]) == 0
    out = capsys.readouterr().out
    assert "vliw_simd_dsp" in out


def test_describe_processor(capsys):
    assert main(["--describe-processor", "--processor",
                 "generic_scalar_dsp"]) == 0
    out = capsys.readouterr().out
    assert "mac_f64" in out


def test_emit_header_standalone(capsys):
    assert main(["--emit-header"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_ASIP_INTRINSICS_H" in out


def test_compile_to_stdout(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x16,double:1x4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "void f_double_1x16_double_1x4(" in out


def test_compile_to_file(fir_file, tmp_path, capsys):
    out_file = tmp_path / "out.c"
    code = main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "-o", str(out_file)])
    assert code == 0
    assert "asip" in out_file.read_text()


def test_dump_ir(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "--dump-ir"])
    assert code == 0
    assert "func " in capsys.readouterr().out


def test_baseline_flag(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x64,double:1x4",
                 "--baseline"])
    assert code == 0
    out = capsys.readouterr().out
    compiled = out[out.index("/* ---- compiled MATLAB functions"):]
    assert "asip_vmac" not in compiled


def test_no_simd_flag(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x64,double:1x4",
                 "--no-simd"])
    assert code == 0
    out = capsys.readouterr().out
    compiled = out[out.index("/* ---- compiled MATLAB functions"):]
    assert "asip_vmac_f64x4" not in compiled


def test_missing_source_is_error(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unreadable_file(capsys):
    assert main(["/nonexistent/path.m", "--args", "double"]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_bad_arg_spec_reported(fir_file, capsys):
    assert main([str(fir_file), "--args", "blah:2x2"]) == 1
    assert "dtype" in capsys.readouterr().err


def test_compile_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.m"
    bad.write_text("function y = f(x)\ny = undefined_thing(x);\nend")
    assert main([str(bad), "--args", "double"]) == 1
    assert "error" in capsys.readouterr().err


def test_parser_help_mentions_examples():
    parser = build_parser()
    assert "repro-mc" in parser.format_usage()


def test_simulate_prints_cycle_report(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x32,double:1x4",
                 "--simulate"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cycles:" in out
    assert "custom instructions" in out


def test_simulate_compare_baseline(fir_file, capsys):
    code = main([str(fir_file), "--args", "double:1x32,double:1x4",
                 "--simulate", "--compare-baseline"])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup:" in out
    assert "baseline cycles:" in out


def test_simulate_deterministic_seed(fir_file, capsys):
    main([str(fir_file), "--args", "double:1x16,double:1x4",
          "--simulate", "--seed", "7"])
    first = capsys.readouterr().out
    main([str(fir_file), "--args", "double:1x16,double:1x4",
          "--simulate", "--seed", "7"])
    second = capsys.readouterr().out
    assert first == second


# ---------------------------------------------------------------------
# Observability flags
# ---------------------------------------------------------------------

LOOPY = """
function y = g(x)
n = length(x);
y = zeros(1, n);
acc = 0;
for i = 1:n
    acc = acc + x(i) * x(i);
end
for i = 1:n
    y(i) = x(i) * acc;
end
end
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loopy.m"
    path.write_text(LOOPY)
    return path


def test_trace_json_is_valid_chrome_trace(loop_file, tmp_path, capsys):
    import json

    trace_file = tmp_path / "trace.json"
    code = main([str(loop_file), "--args", "double:1x32",
                 "--simulate", "--trace-json", str(trace_file)])
    assert code == 0
    data = json.loads(trace_file.read_text())
    # Chrome trace-event JSON object format.
    assert isinstance(data["traceEvents"], list) and data["traceEvents"]
    assert data["displayTimeUnit"] == "ms"
    names = set()
    for event in data["traceEvents"]:
        assert event["ph"] in ("X", "C")
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        names.add(event["name"])
        if event["ph"] == "X":
            assert event["dur"] >= 0
    assert "compile" in names
    assert "simulate" in names


def test_trace_json_env_default(loop_file, tmp_path, capsys, monkeypatch):
    import json

    trace_file = tmp_path / "env_trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace_file))
    assert main([str(loop_file), "--args", "double:1x32",
                 "-o", str(tmp_path / "out.c")]) == 0
    assert json.loads(trace_file.read_text())["traceEvents"]


def test_remarks_flag_prints_to_stderr(loop_file, capsys):
    code = main([str(loop_file), "--args", "double:1x32",
                 "--remarks", "-o", "/dev/null"])
    assert code == 0
    err = capsys.readouterr().err
    assert "[simd-vectorize]" in err
    assert "loopy.m:" in err


def test_remarks_flag_filters_by_pass(loop_file, capsys):
    code = main([str(loop_file), "--args", "double:1x32",
                 "--remarks", "no-such-pass", "-o", "/dev/null"])
    assert code == 0
    err = capsys.readouterr().err
    assert "no remarks" in err
    assert "[simd-vectorize]" not in err


def test_print_changed_dumps_ir(loop_file, capsys):
    code = main([str(loop_file), "--args", "double:1x32",
                 "--print-changed", "-o", "/dev/null"])
    assert code == 0
    err = capsys.readouterr().err
    assert ";; IR after" in err
    assert "func " in err


def test_hotspots_requires_simulate(loop_file, capsys):
    with pytest.raises(SystemExit):
        main([str(loop_file), "--args", "double:1x32", "--hotspots"])


def test_hotspots_prints_annotated_source(loop_file, capsys):
    code = main([str(loop_file), "--args", "double:1x32",
                 "--simulate", "--hotspots"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hotspots:" in out
    assert "total cycles" in out
    # Every non-blank source line shows up in the table.
    assert "acc = acc + x(i) * x(i);" in out


def test_metrics_json_report(loop_file, tmp_path, capsys):
    import json

    metrics_file = tmp_path / "metrics.json"
    code = main([str(loop_file), "--args", "double:1x32",
                 "--simulate", "--hotspots",
                 "--metrics-json", str(metrics_file)])
    assert code == 0
    report = json.loads(metrics_file.read_text())
    assert report["schema"] == "repro-observe-report-v2"
    assert report["compile"]["entry"] == "g_double_1x32"
    assert report["simulation"]["cycles"] > 0
    assert report["simulation"]["hotspots"]
    assert any(row["cycles"] > 0 for row in report["simulation"]["hotspots"])


def test_profile_reports_cache_provenance(loop_file, capsys):
    args = [str(loop_file), "--args", "double:1x32", "--profile",
            "-o", "/dev/null"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "compilation profile:" in first
    assert main(args) == 0  # same process: in-memory cache hit
    second = capsys.readouterr().out
    assert "cache hit" in second
    assert "original compile" in second


# ---------------------------------------------------------------------
# Exit-code contract (repro.errors): 0 ok, 1 failure, 2 usage,
# 3 internal error.  Pinned here so scripts and CI can rely on them.
# ---------------------------------------------------------------------


def test_exit_code_constants():
    from repro.errors import (EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK,
                              EXIT_USAGE)

    assert (EXIT_OK, EXIT_FAILURE, EXIT_USAGE, EXIT_INTERNAL) \
        == (0, 1, 2, 3)


def test_usage_error_exits_2(fir_file):
    with pytest.raises(SystemExit) as info:
        main([str(fir_file), "--no-such-flag"])
    assert info.value.code == 2


def test_unknown_processor_is_failure_not_traceback(fir_file, capsys):
    assert main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "--processor", "no_such_dsp"]) == 1
    err = capsys.readouterr().err
    assert "no_such_dsp" in err
    assert "Traceback" not in err


def test_unwritable_output_is_failure(fir_file, capsys):
    assert main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "-o", "/nonexistent/dir/out.c"]) == 1
    err = capsys.readouterr().err
    assert "error" in err
    assert "Traceback" not in err


def test_unwritable_metrics_json_is_failure(fir_file, capsys):
    assert main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "--metrics-json", "/nonexistent/dir/m.json",
                 "-o", "/dev/null"]) == 1


def test_unwritable_trace_json_is_failure(fir_file, capsys):
    assert main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "--trace-json", "/nonexistent/dir/t.json",
                 "-o", "/dev/null"]) == 1


def test_internal_error_exits_3(fir_file, capsys, monkeypatch):
    import repro.cli as cli_mod

    def boom(*args, **kwargs):
        raise RuntimeError("injected defect")

    monkeypatch.setattr(cli_mod, "compile_source", boom)
    assert main([str(fir_file), "--args", "double:1x16,double:1x4"]) == 3
    err = capsys.readouterr().err
    assert "internal error" in err
    assert "injected defect" in err  # traceback is printed


# ---------------------------------------------------------------------
# --entry selection (multi-function files)
# ---------------------------------------------------------------------

MULTI_FN = """
function r = helper(v)
r = v .* v;
end

function y = main_kernel(x)
y = sum(helper(x));
end
"""


@pytest.fixture
def multi_fn_file(tmp_path):
    path = tmp_path / "multi.m"
    path.write_text(MULTI_FN)
    return path


def test_entry_not_first_compiles(multi_fn_file, capsys):
    assert main([str(multi_fn_file), "--args", "double:1x4",
                 "--entry", "main_kernel", "-o", "/dev/null"]) == 0


def test_entry_not_first_simulates(multi_fn_file, capsys):
    assert main([str(multi_fn_file), "--args", "double:1x4",
                 "--entry", "main_kernel", "--simulate"]) == 0
    out = capsys.readouterr().out
    assert "main_kernel" in out


def test_default_entry_is_first_function(multi_fn_file, capsys):
    # Without --entry the first function ('helper') is compiled.
    assert main([str(multi_fn_file), "--args", "double:1x4",
                 "--simulate"]) == 0
    out = capsys.readouterr().out
    assert "helper" in out


def test_unknown_entry_is_failure_with_hint(multi_fn_file, capsys):
    assert main([str(multi_fn_file), "--args", "double:1x4",
                 "--entry", "nope", "-o", "/dev/null"]) == 1
    err = capsys.readouterr().err
    assert "unknown function 'nope'" in err
    assert "helper" in err and "main_kernel" in err
    assert "Traceback" not in err


def test_entry_arity_mismatch_is_failure(multi_fn_file, capsys):
    assert main([str(multi_fn_file), "--args", "double:1x4,double:1x4",
                 "--entry", "main_kernel", "-o", "/dev/null"]) == 1
    err = capsys.readouterr().err
    assert "expects 1 argument(s), got 2" in err
    assert "Traceback" not in err


# ---------------------------------------------------------------------
# repro-fuzz exit codes and --jobs
# ---------------------------------------------------------------------


def test_fuzz_clean_run_exits_0(capsys):
    from repro.fuzz.cli import main as fuzz_main

    assert fuzz_main(["--seed", "0", "--count", "2",
                      "--backends", "reference"]) == 0


def test_fuzz_unknown_backend_exits_2(capsys):
    from repro.fuzz.cli import main as fuzz_main

    with pytest.raises(SystemExit) as info:
        fuzz_main(["--backends", "nope", "--count", "1"])
    assert info.value.code == 2


def test_fuzz_gcc_requested_but_missing_exits_2(capsys):
    from repro.fuzz.cli import main as fuzz_main

    with pytest.raises(SystemExit) as info:
        fuzz_main(["--backends", "gcc", "--cc", "no-such-compiler",
                   "--count", "1"])
    assert info.value.code == 2
    assert "not on PATH" in capsys.readouterr().err


def test_fuzz_empty_backends_exits_2(capsys):
    from repro.fuzz.cli import main as fuzz_main

    with pytest.raises(SystemExit) as info:
        fuzz_main(["--backends", ",", "--count", "1"])
    assert info.value.code == 2


def test_fuzz_unwritable_metrics_exits_1(capsys):
    from repro.fuzz.cli import main as fuzz_main

    assert fuzz_main(["--count", "1", "--backends", "reference",
                      "--metrics-json", "/nonexistent/dir/f.json"]) == 1
    assert "error" in capsys.readouterr().err


def test_fuzz_internal_error_exits_3(capsys, monkeypatch):
    import repro.fuzz.cli as fuzz_cli

    class Boom:
        def __init__(self, *args, **kwargs):
            raise RuntimeError("injected defect")

    monkeypatch.setattr(fuzz_cli, "DifferentialOracle", Boom)
    assert fuzz_cli.main(["--count", "1"]) == 3
    assert "internal error" in capsys.readouterr().err


def test_fuzz_jobs_matches_serial(tmp_path, capsys):
    import json

    from repro.fuzz.cli import main as fuzz_main

    serial_json = tmp_path / "serial.json"
    par_json = tmp_path / "par.json"
    assert fuzz_main(["--seed", "3", "--count", "8",
                      "--backends", "reference",
                      "--metrics-json", str(serial_json)]) == 0
    assert fuzz_main(["--seed", "3", "--count", "8", "--jobs", "2",
                      "--backends", "reference",
                      "--metrics-json", str(par_json)]) == 0
    serial = json.loads(serial_json.read_text())
    par = json.loads(par_json.read_text())
    for key in ("programs", "ok", "skipped", "divergences", "crashes",
                "distinct_buckets", "failures", "engines"):
        assert serial[key] == par[key], key


def test_fuzz_jobs_must_be_positive(capsys):
    from repro.fuzz.cli import main as fuzz_main

    with pytest.raises(SystemExit) as info:
        fuzz_main(["--count", "1", "--jobs", "0"])
    assert info.value.code == 2


# ---------------------------------------------------------------------
# Parametric processor specs: malformed values are usage errors
# ---------------------------------------------------------------------

def test_parametric_simd_width_compiles(fir_file, capsys):
    assert main([str(fir_file), "--args", "double:1x16,double:1x4",
                 "--processor", "simd_width:8", "-o", "/dev/null"]) == 0


def test_simd_width_zero_is_usage_error(fir_file, capsys):
    with pytest.raises(SystemExit) as info:
        main([str(fir_file), "--args", "double:1x16,double:1x4",
              "--processor", "simd_width:0"])
    assert info.value.code == 2
    err = capsys.readouterr().err
    assert "simd_width:0" in err and "SIMD width" in err
    assert "Traceback" not in err


def test_simd_width_garbage_is_usage_error(fir_file, capsys):
    with pytest.raises(SystemExit) as info:
        main([str(fir_file), "--args", "double:1x16,double:1x4",
              "--processor", "simd_width:banana"])
    assert info.value.code == 2
    assert "must be an integer" in capsys.readouterr().err


def test_malformed_dse_point_is_usage_error(fir_file, capsys):
    bad = ('dse:{"simd_f32_lanes":4,"complex_unit":false,'
           '"scalar_mac":false,"clip_unit":false,"mac_cycles":-1,'
           '"mul_cycles":1,"registers":16}')
    with pytest.raises(SystemExit) as info:
        main([str(fir_file), "--args", "double:1x16,double:1x4",
              "--processor", bad])
    assert info.value.code == 2
    err = capsys.readouterr().err
    assert "mac cycle" in err or "mac_cycles" in err
    assert "Traceback" not in err


def test_describe_parametric_processor(capsys):
    assert main(["--describe-processor",
                 "--processor", "simd_width:4"]) == 0
    assert "vmac_f32x4" in capsys.readouterr().out


# ---------------------------------------------------------------------
# repro-dse exit-code matrix
# ---------------------------------------------------------------------

@pytest.fixture
def dse_corpus(tmp_path):
    import json as _json

    kernel = tmp_path / "tiny.m"
    kernel.write_text("function y = tiny(x)\ny = x + 1.0;\nend\n")
    (tmp_path / "manifest.json").write_text(_json.dumps(
        {"tiny.m": {"args": "double:1x8", "entry": "tiny"}}))
    return tmp_path


def test_dse_smoke_run_writes_front(dse_corpus, tmp_path, capsys):
    import json as _json

    from repro.dse.cli import main as dse_main

    space = tmp_path / "space.json"
    space.write_text(_json.dumps({"name": "one",
                                  "scalar_mac": [True, False]}))
    out = tmp_path / "front.json"
    assert dse_main(["--corpus", str(dse_corpus),
                     "--space", str(space),
                     "--out", str(out), "--quiet"]) == 0
    doc = _json.loads(out.read_text())
    assert doc["schema"] == "repro-dse-front-v1"
    assert doc["evaluated"] == 2 and doc["front"]


def test_dse_malformed_width_is_usage_error(dse_corpus, tmp_path, capsys):
    import json as _json

    from repro.dse.cli import main as dse_main

    space = tmp_path / "space.json"
    space.write_text(_json.dumps({"name": "bad",
                                  "simd_f32_lanes": [0, 4]}))
    assert dse_main(["--corpus", str(dse_corpus),
                     "--space", str(space)]) == 2
    err = capsys.readouterr().err
    assert str(space) in err and "SIMD width" in err
    assert "Traceback" not in err


def test_dse_negative_cycle_cost_is_usage_error(dse_corpus, tmp_path,
                                                capsys):
    import json as _json

    from repro.dse.cli import main as dse_main

    space = tmp_path / "space.json"
    space.write_text(_json.dumps({"name": "bad", "mac_cycles": [-1]}))
    assert dse_main(["--corpus", str(dse_corpus),
                     "--space", str(space)]) == 2
    err = capsys.readouterr().err
    assert "mac_cycles" in err and "Traceback" not in err


def test_dse_bad_jobs_and_budget_are_usage_errors(dse_corpus, capsys):
    from repro.dse.cli import main as dse_main

    assert dse_main(["--corpus", str(dse_corpus), "--jobs", "0"]) == 2
    assert dse_main(["--corpus", str(dse_corpus), "--budget", "-1"]) == 2
    assert "Traceback" not in capsys.readouterr().err


def test_dse_unreadable_corpus_is_failure(tmp_path, capsys):
    from repro.dse.cli import main as dse_main

    assert dse_main(["--corpus", str(tmp_path / "absent")]) == 1
    err = capsys.readouterr().err
    assert "cannot read corpus" in err and "Traceback" not in err


def test_dse_internal_error_exits_3(dse_corpus, capsys, monkeypatch):
    import repro.dse.engine as dse_engine

    class Boom:
        def __init__(self, *args, **kwargs):
            raise RuntimeError("injected defect")

    monkeypatch.setattr(dse_engine, "DesignSpaceSearch", Boom)
    from repro.dse.cli import main as dse_main

    assert dse_main(["--corpus", str(dse_corpus)]) == 3
    assert "internal error" in capsys.readouterr().err
