"""Differential fuzzing subsystem: generator, oracle, reducer, CLI.

The deterministic smoke test at the bottom is the tier-1 guard: a fixed
seed range must run through the multi-way oracle with zero divergences,
and every corpus reproducer (each minted from a real golden-model bug,
all since fixed) must agree across engines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from helpers import requires_gcc
from repro.frontend.parser import parse
from repro.frontend.unparse import to_source
from repro.fuzz import (DifferentialOracle, GeneratedProgram,
                        ProgramGenerator, Verdict, reduce_program)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.reducer import load_reproducer, write_reproducer

CORPUS = Path(__file__).parent / "fuzz_corpus"

SIM_ONLY = ["reference", "compiled"]


# ---------------------------------------------------------------------------
# Generator


def test_generator_is_deterministic():
    a = ProgramGenerator(1234).generate()
    b = ProgramGenerator(1234).generate()
    assert a.source == b.source
    assert a.input_values == b.input_values
    assert a.param_specs == b.param_specs


def test_generator_seeds_differ():
    sources = {ProgramGenerator(s).generate().source for s in range(12)}
    assert len(sources) > 8


def test_generated_programs_parse_and_roundtrip():
    for seed in range(20):
        prog = ProgramGenerator(seed).generate()
        tree = parse(prog.source)
        # Unparse -> parse -> unparse is a fixpoint.
        again = to_source(tree)
        assert to_source(parse(again)) == again


def test_interp_mode_uses_growth_features():
    sources = "".join(ProgramGenerator(s, mode="interp").generate().source
                      for s in range(40))
    assert "[]" in sources  # growth-from-empty appears somewhere


def test_program_serialization_roundtrip():
    prog = ProgramGenerator(7).generate()
    clone = GeneratedProgram.from_dict(
        json.loads(json.dumps(prog.to_dict())))
    assert clone.source == prog.source
    assert clone.param_specs == prog.param_specs
    inputs, cloned = prog.inputs(), clone.inputs()
    assert len(inputs) == len(cloned)


# ---------------------------------------------------------------------------
# Oracle


def test_oracle_smoke_sim_engines():
    oracle = DifferentialOracle(engines=SIM_ONLY)
    for seed in range(20):
        verdict = oracle.run(ProgramGenerator(seed).generate())
        assert verdict.ok, \
            f"seed {seed}: {verdict.status} ({verdict.engine}): " \
            f"{verdict.detail}"


def test_oracle_smoke_interp_mode():
    oracle = DifferentialOracle(engines=SIM_ONLY)
    for seed in range(10):
        prog = ProgramGenerator(seed, mode="interp").generate()
        verdict = oracle.run(prog)
        assert verdict.ok, \
            f"seed {seed}: {verdict.status} ({verdict.engine}): " \
            f"{verdict.detail}"


@requires_gcc
def test_oracle_smoke_gcc_engine():
    oracle = DifferentialOracle()
    assert "gcc" in oracle.engines
    for seed in (0, 38, 47):  # 38 and 47 are former gcc-engine crashers
        verdict = oracle.run(ProgramGenerator(seed).generate())
        assert verdict.ok, \
            f"seed {seed}: {verdict.status} ({verdict.engine}): " \
            f"{verdict.detail}"


def test_oracle_flags_real_divergence():
    """A program the engines genuinely disagree on must be reported."""
    prog = ProgramGenerator(0).generate()

    class LyingOracle(DifferentialOracle):
        def _golden(self, program):
            outputs = super()._golden(program)
            return [o + 1.0 for o in outputs]

    verdict = LyingOracle(engines=SIM_ONLY).run(prog)
    assert verdict.status == "divergence"
    assert verdict.key().startswith("divergence:")


# ---------------------------------------------------------------------------
# Reducer


def _marker_oracle(marker: str):
    class MarkerOracle:
        runs = 0

        def run(self, program):
            MarkerOracle.runs += 1
            if marker in program.source:
                return Verdict(status="divergence", engine="reference",
                               detail="marker present", bucket=None,
                               engines_run=SIM_ONLY, golden=None)
            return Verdict(status="ok", engine=None, detail=None,
                           bucket=None, engines_run=SIM_ONLY, golden=None)

    return MarkerOracle()


def test_reducer_shrinks_to_relevant_statements():
    gen = ProgramGenerator(11)
    prog = gen.generate()
    oracle = _marker_oracle("v1 =")
    verdict = oracle.run(prog)
    assert verdict.status == "divergence"
    small = reduce_program(prog, verdict, oracle=oracle)
    assert "v1 =" in small.source
    assert len(small.source) <= len(prog.source)
    # The reduction must preserve the verdict key.
    assert oracle.run(small).key() == verdict.key()


def test_reducer_drops_unused_params():
    prog = GeneratedProgram(
        source=("function y = f(a, b)\n"
                "  y = a + 1;\n"
                "end\n"),
        entry="f", mode="compile", seed=0,
        param_specs=[("double", False, 1, 1), ("double", False, 1, 1)],
        input_values=[[1.5], [2.5]], nargout=1, returns=["y"])
    oracle = _marker_oracle("y = ")
    small = reduce_program(prog, oracle.run(prog), oracle=oracle)
    assert "b" not in small.source.split("\n")[0]
    assert len(small.param_specs) == 1


def test_reducer_drops_orphaned_subfunctions():
    prog = GeneratedProgram(
        source=("function y = f(x)\n"
                "  v1 = sf1(x);\n"
                "  y = x + 1;\n"
                "end\n"
                "\n"
                "function r = sf1(a)\n"
                "  r = a .* 2;\n"
                "end\n"
                "\n"
                "function r = sf2(a)\n"
                "  r = a - 1;\n"
                "end\n"),
        entry="f", mode="compile", seed=0,
        param_specs=[("double", False, 1, 1)],
        input_values=[[1.5]], nargout=1, returns=["y"])
    oracle = _marker_oracle("y = ")
    small = reduce_program(prog, oracle.run(prog), oracle=oracle)
    # sf2 was never called; sf1 becomes dead once 'v1 = sf1(x)' is
    # deleted — both must be gone from the reproducer.
    assert "sf2" not in small.source
    assert "sf1" not in small.source
    assert "y = " in small.source


def test_reducer_keeps_reachable_subfunctions():
    prog = GeneratedProgram(
        source=("function y = f(x)\n"
                "  y = sf1(x);\n"
                "end\n"
                "\n"
                "function r = sf1(a)\n"
                "  r = a .* 2;\n"
                "end\n"),
        entry="f", mode="compile", seed=0,
        param_specs=[("double", False, 1, 1)],
        input_values=[[1.5]], nargout=1, returns=["y"])
    oracle = _marker_oracle("sf1(x)")
    small = reduce_program(prog, oracle.run(prog), oracle=oracle)
    assert "function r = sf1(a)" in small.source


def test_reproducer_roundtrip(tmp_path):
    prog = ProgramGenerator(3).generate()
    verdict = Verdict(status="divergence", engine="compiled",
                      detail="demo", bucket=None,
                      engines_run=SIM_ONLY, golden=None)
    write_reproducer(tmp_path, "case0", prog, verdict)
    loaded, vdict = load_reproducer(tmp_path, "case0")
    assert loaded.source == prog.source
    assert loaded.inputs()[0] is not None
    assert vdict["status"] == "divergence"


# ---------------------------------------------------------------------------
# Seed corpus: every minted reproducer was a real bug; all are fixed.


def _corpus_names():
    return sorted(p.stem for p in CORPUS.glob("*.m"))


def test_corpus_is_populated():
    assert len(_corpus_names()) >= 8


@pytest.mark.parametrize("name", [n for n in _corpus_names()])
def test_corpus_entry_agrees(name):
    prog, verdict = load_reproducer(CORPUS, name)
    oracle = DifferentialOracle(engines=SIM_ONLY)
    result = oracle.run(prog)
    assert result.ok, \
        f"{name} regressed ({verdict['detail']!r}): " \
        f"{result.status} ({result.engine}): {result.detail}"


@requires_gcc
@pytest.mark.parametrize("name", ["complex_const_accumulator",
                                  "scalar_complex_param"])
def test_corpus_gcc_entries_agree(name):
    prog, _ = load_reproducer(CORPUS, name)
    result = DifferentialOracle().run(prog)
    assert result.ok, f"{name}: {result.status}: {result.detail}"


# ---------------------------------------------------------------------------
# CLI


def test_cli_clean_run(tmp_path, capsys):
    metrics = tmp_path / "fuzz.json"
    code = fuzz_main(["--seed", "0", "--count", "5",
                      "--backends", "reference,compiled",
                      "--metrics-json", str(metrics)])
    assert code == 0
    report = json.loads(metrics.read_text())
    assert report["programs"] == 5
    assert report["divergences"] == 0
    assert report["crashes"] == 0
    out = capsys.readouterr().out
    assert "5 programs" in out


def test_cli_writes_reproducer_on_failure(tmp_path, monkeypatch):
    corpus = tmp_path / "corpus"

    def lying_golden(self, program):
        outputs = DifferentialOracle._golden_original(self, program)
        return [o + 1.0 for o in outputs]

    monkeypatch.setattr(DifferentialOracle, "_golden_original",
                        DifferentialOracle._golden, raising=False)
    monkeypatch.setattr(DifferentialOracle, "_golden", lying_golden)
    code = fuzz_main(["--seed", "0", "--count", "2",
                      "--backends", "reference",
                      "--reduce", "--corpus", str(corpus)])
    assert code == 1
    assert list(corpus.glob("*.m")), "no reproducer written"
    assert list(corpus.glob("*.json")), "no sidecar written"
