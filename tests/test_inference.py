"""Unit tests for type/shape inference and function specialization."""

import pytest

from repro.errors import SemanticError, UnsupportedFeatureError
from repro.frontend.parser import parse
from repro.semantics.inference import specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType


def infer(source: str, entry: str, args: list[MType]):
    return specialize_program(parse(source), entry, args)


def arg_row(n: int, dtype=DType.DOUBLE, complex_=False) -> MType:
    return MType(dtype, complex_, Shape(1, n))


def var_type(spec, name: str) -> MType:
    return spec.final_env.lookup(name).mtype


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------


def test_identity_function():
    sp = infer("function y = f(x)\ny = x;\nend", "f", [arg_row(8)])
    assert sp.entry.result_types[0].shape == Shape(1, 8)


def test_scalar_arithmetic_types():
    sp = infer("function y = f(a, b)\ny = a * b + 2;\nend", "f",
               [MType.double(), MType.double()])
    assert sp.entry.result_types[0].is_scalar


def test_constant_propagation_through_length():
    src = "function y = f(x)\nn = length(x);\ny = zeros(1, n);\nend"
    sp = infer(src, "f", [arg_row(12)])
    assert sp.entry.result_types[0].shape == Shape(1, 12)
    assert var_type(sp.entry, "n").value == 12.0


def test_constant_arithmetic_propagates_to_shapes():
    src = "function y = f(x)\ny = zeros(2, length(x) * 2 + 1);\nend"
    sp = infer(src, "f", [arg_row(5)])
    assert sp.entry.result_types[0].shape == Shape(2, 11)


def test_matrix_product_shapes():
    src = "function C = f(A, B)\nC = A * B;\nend"
    sp = infer(src, "f", [MType(DType.DOUBLE, False, Shape(2, 3)),
                          MType(DType.DOUBLE, False, Shape(3, 7))])
    assert sp.entry.result_types[0].shape == Shape(2, 7)


def test_matrix_product_mismatch_rejected():
    src = "function C = f(A, B)\nC = A * B;\nend"
    with pytest.raises(SemanticError, match="inner dimensions"):
        infer(src, "f", [MType(DType.DOUBLE, False, Shape(2, 3)),
                         MType(DType.DOUBLE, False, Shape(4, 7))])


def test_elementwise_shape_conflict_rejected():
    src = "function y = f(a, b)\ny = a + b;\nend"
    with pytest.raises(SemanticError, match="do not conform"):
        infer(src, "f", [arg_row(4), arg_row(5)])


def test_transpose_shape():
    sp = infer("function y = f(x)\ny = x';\nend", "f", [arg_row(6)])
    assert sp.entry.result_types[0].shape == Shape(6, 1)


def test_range_shape():
    sp = infer("function y = f()\ny = 1:2:9;\nend", "f", [])
    assert sp.entry.result_types[0].shape == Shape(1, 5)


def test_matrix_literal_shape():
    sp = infer("function m = f()\nm = [1 2 3; 4 5 6];\nend", "f", [])
    assert sp.entry.result_types[0].shape == Shape(2, 3)


def test_concat_of_vectors():
    sp = infer("function y = f(a, b)\ny = [a b];\nend", "f",
               [arg_row(3), arg_row(4)])
    assert sp.entry.result_types[0].shape == Shape(1, 7)


def test_slice_shapes():
    src = "function y = f(x)\ny = x(2:5);\nend"
    sp = infer(src, "f", [arg_row(10)])
    assert sp.entry.result_types[0].shape == Shape(1, 4)


def test_colon_slice_shape():
    src = "function y = f(A)\ny = A(:, 2);\nend"
    sp = infer(src, "f", [MType(DType.DOUBLE, False, Shape(4, 5))])
    assert sp.entry.result_types[0].shape == Shape(4, 1)


def test_end_resolution():
    src = "function y = f(x)\ny = x(end);\nend"
    sp = infer(src, "f", [arg_row(9)])
    assert sp.entry.result_types[0].is_scalar


def test_linear_colon_of_matrix():
    src = "function y = f(A)\ny = A(:);\nend"
    sp = infer(src, "f", [MType(DType.DOUBLE, False, Shape(3, 4))])
    assert sp.entry.result_types[0].shape == Shape(12, 1)


# ----------------------------------------------------------------------
# Control flow and fixpoints
# ----------------------------------------------------------------------


def test_loop_promotes_real_to_complex():
    src = """
function s = f(z)
s = 0;
for k = 1:length(z)
    s = s + z(k);
end
end
"""
    sp = infer(src, "f", [arg_row(4, complex_=True)])
    assert sp.entry.result_types[0].is_complex


def test_store_promotes_array_to_complex():
    src = """
function y = f(z)
y = zeros(1, length(z));
for k = 1:length(z)
    y(k) = z(k) * 2;
end
end
"""
    sp = infer(src, "f", [arg_row(4, complex_=True)])
    assert sp.entry.result_types[0].is_complex


def test_branch_join_types():
    src = """
function y = f(c)
if c > 0
    y = 1;
else
    y = complex(0, 1);
end
end
"""
    sp = infer(src, "f", [MType.double()])
    assert sp.entry.result_types[0].is_complex


def test_static_branch_pruning():
    src = """
function y = f(x)
if size(x, 1) > 1
    y = zeros(3, 1);
else
    y = zeros(1, 3);
end
end
"""
    sp = infer(src, "f", [arg_row(5)])
    assert sp.entry.result_types[0].shape == Shape(1, 3)
    assert len(sp.entry.static_branches) == 1


def test_static_branch_else_selected():
    src = """
function y = f(x)
if length(x) > 100
    y = zeros(1, 1);
else
    y = zeros(1, 2);
end
end
"""
    sp = infer(src, "f", [arg_row(5)])
    assert sp.entry.result_types[0].shape == Shape(1, 2)
    assert list(sp.entry.static_branches.values()) == [-1]


def test_dynamic_branch_not_pruned():
    src = """
function y = f(c)
if c > 0
    y = 1;
else
    y = 2;
end
end
"""
    sp = infer(src, "f", [MType.double()])
    assert sp.entry.static_branches == {}


def test_while_fixpoint():
    src = """
function n = f(x)
n = 1;
while n < length(x)
    n = n * 2;
end
end
"""
    sp = infer(src, "f", [arg_row(100)])
    assert sp.entry.result_types[0].is_scalar
    assert sp.entry.result_types[0].value is None


def test_loop_variable_after_loop():
    src = "function y = f()\nfor k = 1:5\nend\ny = k;\nend"
    sp = infer(src, "f", [])
    assert sp.entry.result_types[0].is_scalar


# ----------------------------------------------------------------------
# Calls and specialization
# ----------------------------------------------------------------------


def test_user_function_specialization():
    src = """
function y = top(a, b)
y = helper(a) + helper(b);
end
function y = helper(x)
y = x * 2;
end
"""
    sp = infer(src, "top", [arg_row(4), arg_row(4)])
    helper_specs = [k for k in sp.functions if k.startswith("helper")]
    assert len(helper_specs) == 1  # same signature, one specialization


def test_specialization_per_shape():
    src = """
function y = top(a, b)
y = total(a) + total(b);
end
function s = total(x)
s = sum(x);
end
"""
    sp = infer(src, "top", [arg_row(4), arg_row(9)])
    total_specs = [k for k in sp.functions if k.startswith("total")]
    assert len(total_specs) == 2


def test_value_specialization_on_constants():
    src = """
function y = top(x)
y = make(length(x));
end
function y = make(n)
y = zeros(1, n);
end
"""
    sp = infer(src, "top", [arg_row(7)])
    assert sp.entry.result_types[0].shape == Shape(1, 7)


def test_multiple_return_values():
    src = """
function [lo, hi] = bounds(x)
lo = min(x);
hi = max(x);
end
"""
    sp = infer(src, "bounds", [arg_row(5)])
    assert len(sp.entry.result_types) == 2


def test_library_fft_resolves():
    src = "function X = f(x)\nX = fft(x);\nend"
    sp = infer(src, "f", [arg_row(16)])
    assert sp.entry.result_types[0].is_complex
    assert any(key.startswith("fft") for key in sp.functions)


def test_user_function_shadows_library():
    src = """
function y = f(x)
y = conv(x, x);
end
function y = conv(a, b)
y = a + b;
end
"""
    sp = infer(src, "f", [arg_row(4)])
    # User conv returns the elementwise sum's shape, not len 7.
    assert sp.entry.result_types[0].shape == Shape(1, 4)


def test_recursion_rejected():
    src = "function y = f(x)\ny = f(x);\nend"
    with pytest.raises(UnsupportedFeatureError, match="recursive"):
        infer(src, "f", [MType.double()])


def test_wrong_argument_count():
    src = "function y = f(a, b)\ny = a + b;\nend"
    with pytest.raises(SemanticError, match="expects 2"):
        infer(src, "f", [MType.double()])


def test_unknown_function():
    src = "function y = f(x)\ny = nosuchfn(x);\nend"
    with pytest.raises(SemanticError, match="undefined"):
        infer(src, "f", [MType.double()])


def test_output_never_assigned():
    src = "function y = f(x)\nz = x;\nend"
    with pytest.raises(SemanticError, match="never assigned"):
        infer(src, "f", [MType.double()])


# ----------------------------------------------------------------------
# Assignment rules
# ----------------------------------------------------------------------


def test_indexed_store_requires_preallocation():
    src = "function y = f(x)\ny(3) = x;\nend"
    with pytest.raises(SemanticError, match="preallocate"):
        infer(src, "f", [MType.double()])


def test_indexed_store_shape_mismatch():
    src = """
function y = f(x)
y = zeros(1, 10);
y(1:3) = x;
end
"""
    with pytest.raises(SemanticError, match="shape mismatch"):
        infer(src, "f", [arg_row(5)])


def test_multi_assign_from_size():
    src = "function [m, n] = f(A)\n[m, n] = size(A);\nend"
    sp = infer(src, "f", [MType(DType.DOUBLE, False, Shape(3, 8))])
    assert sp.entry.final_env.lookup("m").mtype.value == 3.0
    assert sp.entry.final_env.lookup("n").mtype.value == 8.0


def test_multi_assign_minmax():
    src = "function [v, i] = f(x)\n[v, i] = max(x);\nend"
    sp = infer(src, "f", [arg_row(6)])
    assert len(sp.entry.result_types) == 2


def test_anonymous_function_rejected():
    src = "function y = f(x)\ng = @(t) t + 1;\ny = g(x);\nend"
    with pytest.raises(UnsupportedFeatureError, match="anonymous"):
        infer(src, "f", [MType.double()])


def test_logical_index_rejected():
    src = "function y = f(x)\ny = x(x > 0);\nend"
    with pytest.raises(UnsupportedFeatureError, match="logical indexing"):
        infer(src, "f", [arg_row(4)])


def test_fft_non_power_of_two_rejected():
    src = "function X = f(x)\nX = fft(x);\nend"
    with pytest.raises(Exception, match="power of two"):
        infer(src, "f", [arg_row(12)])


def test_builtin_arity_checked():
    src = "function y = f(x)\ny = sqrt(x, x);\nend"
    with pytest.raises(SemanticError, match="argument"):
        infer(src, "f", [MType.double()])


def test_single_times_double_stays_single():
    src = "function y = f(x)\ny = x * 2.0;\nend"
    sp = infer(src, "f", [MType.scalar(DType.SINGLE)])
    assert sp.entry.result_types[0].dtype is DType.SINGLE


def test_comparison_is_logical():
    src = "function y = f(a)\ny = a > 0;\nend"
    sp = infer(src, "f", [MType.double()])
    assert sp.entry.result_types[0].dtype is DType.LOGICAL


def test_zero_arg_builtin_without_parens():
    src = "function y = f()\ny = pi;\nend"
    sp = infer(src, "f", [])
    assert abs(var_type(sp.entry, "y").value) > 3.14  # constant tracked
