"""Unit tests for the golden MATLAB interpreter."""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.mlab.interp import MatlabInterpreter


def call(source: str, entry: str, args=(), nargout: int = 1):
    return MatlabInterpreter(source).call(entry, list(args), nargout)


def scalar(value) -> float:
    return float(np.asarray(value).ravel()[0])


# ----------------------------------------------------------------------
# Core semantics
# ----------------------------------------------------------------------


def test_scalar_arithmetic():
    out = call("function y = f(a, b)\ny = a * b + a / b - 1;\nend",
               "f", [6.0, 3.0])
    assert scalar(out[0]) == 6 * 3 + 2 - 1


def test_matrix_product_vs_elementwise():
    src = "function [p, e] = f(A)\np = A * A;\ne = A .* A;\nend"
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    p, e = call(src, "f", [a], nargout=2)
    assert np.allclose(p, a @ a)
    assert np.allclose(e, a * a)


def test_backslash_scalar_division():
    out = call("function y = f(a)\ny = 2 \\ a;\nend", "f", [10.0])
    assert scalar(out[0]) == 5.0


def test_power_negative_base_goes_complex():
    out = call("function y = f()\ny = (-8) ^ 0.5;\nend", "f")
    assert np.iscomplexobj(out[0])


def test_colon_operator_fencepost():
    out = call("function y = f()\ny = 1:0.3:2;\nend", "f")
    assert np.allclose(out[0], [[1.0, 1.3, 1.6, 1.9]])


def test_empty_range():
    out = call("function y = f()\ny = 5:1;\nend", "f")
    assert out[0].size == 0


def test_transpose_conjugates():
    src = "function y = f(z)\ny = z';\nend"
    z = np.array([[1 + 2j, 3 - 1j]])
    out = call(src, "f", [z])
    assert np.allclose(out[0], z.conj().T)


def test_dot_transpose_does_not_conjugate():
    src = "function y = f(z)\ny = z.';\nend"
    z = np.array([[1 + 2j]])
    assert np.allclose(call(src, "f", [z])[0], z.T)


# ----------------------------------------------------------------------
# Indexing
# ----------------------------------------------------------------------


def test_linear_indexing_column_major():
    src = "function y = f(A)\ny = A(3);\nend"
    a = np.array([[1.0, 3.0], [2.0, 4.0]])
    assert scalar(call(src, "f", [a])[0]) == 3.0


def test_end_in_ranges():
    src = "function y = f(x)\ny = x(2:end-1);\nend"
    x = np.arange(1.0, 7.0).reshape(1, -1)
    assert np.allclose(call(src, "f", [x])[0], [[2, 3, 4, 5]])


def test_nested_end_binds_to_inner_array():
    src = "function y = f(x, idx)\ny = x(idx(end));\nend"
    x = np.arange(10.0, 16.0).reshape(1, -1)
    idx = np.array([[1.0, 4.0]])
    assert scalar(call(src, "f", [x, idx])[0]) == 13.0


def test_logical_indexing():
    src = "function y = f(x)\ny = x(x > 2);\nend"
    x = np.array([[1.0, 5.0, 2.0, 7.0]])
    assert np.allclose(call(src, "f", [x])[0], [[5.0, 7.0]])


def test_colon_whole_array():
    src = "function y = f(A)\ny = A(:);\nend"
    a = np.array([[1.0, 3.0], [2.0, 4.0]])
    assert np.allclose(call(src, "f", [a])[0],
                       np.array([[1.0], [2.0], [3.0], [4.0]]))


def test_two_dim_indexing_with_vectors():
    src = "function y = f(A)\ny = A([1 3], 2);\nend"
    a = np.arange(12.0).reshape(3, 4)
    assert np.allclose(call(src, "f", [a])[0], a[[0, 2], 1:2])


def test_array_growth_on_store():
    src = "function y = f()\ny = zeros(1, 2);\ny(5) = 9;\nend"
    out = call(src, "f")[0]
    assert out.shape == (1, 5)
    assert out[0, 4] == 9.0


def test_growth_from_undefined():
    src = "function y = f()\ny(3) = 7;\nend"
    out = call(src, "f")[0]
    assert out.size >= 3 and out.ravel()[2] == 7.0


def test_out_of_bounds_read_raises():
    src = "function y = f(x)\ny = x(10);\nend"
    with pytest.raises(InterpreterError, match="bounds"):
        call(src, "f", [np.zeros((1, 3))])


def test_complex_store_promotes_array():
    src = "function y = f()\ny = zeros(1, 2);\ny(1) = 1 + 2i;\nend"
    out = call(src, "f")[0]
    assert np.iscomplexobj(out)


# ----------------------------------------------------------------------
# Control flow and functions
# ----------------------------------------------------------------------


def test_for_over_matrix_columns():
    src = """
function s = f(A)
s = 0;
for c = A
    s = s + c(1) * c(2);
end
end
"""
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    assert scalar(call(src, "f", [a])[0]) == 1 * 3 + 2 * 4


def test_switch_on_strings():
    src = """
function y = f(mode)
switch mode
case 'fast'
    y = 1;
case 'slow'
    y = 2;
otherwise
    y = 0;
end
end
"""
    assert scalar(call(src, "f", ["fast"])[0]) == 1
    assert scalar(call(src, "f", ["slow"])[0]) == 2
    assert scalar(call(src, "f", ["other"])[0]) == 0


def test_anonymous_function_captures_environment():
    src = """
function y = f(a)
scale = a * 2;
g = @(t) t * scale;
y = g(3);
end
"""
    assert scalar(call(src, "f", [5.0])[0]) == 30.0


def test_function_handle_dispatch():
    src = """
function y = f(x)
h = @helper;
y = h(x);
end
function y = helper(x)
y = x + 100;
end
"""
    assert scalar(call(src, "f", [1.0])[0]) == 101.0


def test_nested_user_calls_and_recursion():
    src = """
function y = fact(n)
if n <= 1
    y = 1;
else
    y = n * fact(n - 1);
end
end
"""
    assert scalar(call(src, "fact", [5.0])[0]) == 120.0


def test_error_builtin_raises():
    src = "function f(x)\nif x < 0\nerror('negative input');\nend\nend"
    with pytest.raises(InterpreterError, match="negative input"):
        call(src, "f", [-1.0], nargout=0)


def test_multiple_outputs_partial_request():
    src = "function [a, b, c] = f()\na = 1; b = 2; c = 3;\nend"
    out = call(src, "f", nargout=2)
    assert len(out) == 2


def test_script_execution():
    interp = MatlabInterpreter("x = 3;\ny = x * 4;")
    workspace = interp.run_script()
    assert scalar(workspace["y"]) == 12.0


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------


def test_min_max_with_indices():
    src = "function [v, i] = f(x)\n[v, i] = min(x);\nend"
    x = np.array([[4.0, -1.0, 2.0]])
    v, i = call(src, "f", [x], nargout=2)
    assert scalar(v) == -1.0 and scalar(i) == 2.0


def test_sum_matrix_default_dim():
    src = "function s = f(A)\ns = sum(A);\nend"
    a = np.arange(6.0).reshape(2, 3)
    assert np.allclose(call(src, "f", [a])[0], a.sum(axis=0,
                                                     keepdims=True))


def test_fprintf_format_recycling():
    src = "function f(v)\nfprintf('%g,', v);\nend"
    interp = MatlabInterpreter(src)
    interp.call("f", [np.array([[1.0, 2.0, 3.0]])], nargout=0)
    assert interp.stdout.getvalue() == "1,2,3,"


def test_disp_string():
    interp = MatlabInterpreter("function f()\ndisp('hello');\nend")
    interp.call("f", [], nargout=0)
    assert interp.stdout.getvalue() == "hello\n"


def test_library_kernels_accessible():
    src = "function y = f(x)\ny = real(ifft(fft(x)));\nend"
    x = np.random.default_rng(0).standard_normal((1, 16))
    assert np.allclose(call(src, "f", [x])[0], x)


def test_filter_builtin_iir():
    src = "function y = f(b, a, x)\ny = filter(b, a, x);\nend"
    b = np.array([[0.5, 0.5]])
    a = np.array([[1.0, -0.3]])
    x = np.random.default_rng(1).standard_normal((1, 20))
    out = call(src, "f", [b, a, x])[0]
    from scipy.signal import lfilter
    assert np.allclose(out.ravel(), lfilter(b.ravel(), a.ravel(),
                                            x.ravel()))


def test_string_length_and_concat_as_numbers():
    src = "function n = f()\nn = length('hello');\nend"
    assert scalar(call(src, "f")[0]) == 5.0


def test_mod_rem_sign_conventions():
    src = "function [m, r] = f(a, b)\nm = mod(a, b);\nr = rem(a, b);\nend"
    m, r = call(src, "f", [-7.0, 3.0], nargout=2)
    assert scalar(m) == 2.0
    assert scalar(r) == -1.0


def test_int32_saturates():
    src = "function y = f(x)\ny = int32(x);\nend"
    assert scalar(call(src, "f", [3e10])[0]) == 2 ** 31 - 1


def test_reshape_column_major():
    src = "function B = f(A)\nB = reshape(A, 3, 2);\nend"
    a = np.arange(6.0).reshape(2, 3)
    expected = a.reshape((3, 2), order="F")
    assert np.allclose(call(src, "f", [a])[0], expected)


def test_undefined_variable_message():
    with pytest.raises(InterpreterError, match="undefined"):
        call("function y = f()\ny = bogus_name;\nend", "f")
