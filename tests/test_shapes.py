"""Unit tests for the 2-D shape algebra."""

from repro.semantics.shapes import EMPTY, SCALAR, Shape, col, dim_join, \
    dims_equal, row


def test_scalar_queries():
    assert SCALAR.is_scalar and SCALAR.is_vector
    assert SCALAR.numel() == 1
    assert SCALAR.length() == 1


def test_row_and_col_constructors():
    assert row(5) == Shape(1, 5)
    assert col(5) == Shape(5, 1)
    assert row(5).is_row and not row(5).is_col
    assert col(5).is_col and not col(5).is_row


def test_vector_queries():
    assert row(8).is_vector and col(8).is_vector
    assert not Shape(3, 4).is_vector


def test_numel_and_length():
    assert Shape(3, 4).numel() == 12
    assert Shape(3, 4).length() == 4
    assert Shape(9, 2).length() == 9
    assert EMPTY.length() == 0
    assert Shape(0, 5).length() == 0


def test_unknown_dims_propagate():
    shape = Shape(None, 4)
    assert shape.numel() is None
    assert shape.length() is None
    assert not shape.is_concrete


def test_dim_accessor_is_one_based():
    shape = Shape(3, 7)
    assert shape.dim(1) == 3
    assert shape.dim(2) == 7
    assert shape.dim(3) == 1  # trailing singleton dims


def test_transpose():
    assert Shape(2, 5).transpose() == Shape(5, 2)
    assert SCALAR.transpose() == SCALAR


def test_join_equal_and_conflicting():
    assert Shape(2, 3).join(Shape(2, 3)) == Shape(2, 3)
    assert Shape(2, 3).join(Shape(2, 4)) == Shape(2, None)
    assert Shape(2, 3).join(Shape(5, 3)) == Shape(None, 3)


def test_elementwise_scalar_expansion():
    assert SCALAR.elementwise(Shape(3, 4)) == Shape(3, 4)
    assert Shape(3, 4).elementwise(SCALAR) == Shape(3, 4)


def test_elementwise_matching_shapes():
    assert Shape(3, 4).elementwise(Shape(3, 4)) == Shape(3, 4)


def test_elementwise_conflict_is_none():
    assert Shape(3, 4).elementwise(Shape(3, 5)) is None
    assert row(4).elementwise(col(4)) is None  # no implicit broadcasting


def test_elementwise_with_unknown_dim():
    merged = Shape(3, None).elementwise(Shape(3, 7))
    assert merged == Shape(3, 7)


def test_matmul_shapes():
    assert Shape(2, 3).matmul(Shape(3, 5)) == Shape(2, 5)
    assert Shape(2, 3).matmul(Shape(4, 5)) is None
    assert SCALAR.matmul(Shape(3, 3)) == Shape(3, 3)
    assert Shape(3, 3).matmul(SCALAR) == Shape(3, 3)


def test_matmul_vector_cases():
    assert row(4).matmul(col(4)) == SCALAR
    assert col(4).matmul(row(4)) == Shape(4, 4)


def test_hcat():
    assert row(2).hcat(row(3)) == row(5)
    assert Shape(2, 3).hcat(Shape(2, 4)) == Shape(2, 7)
    assert Shape(2, 3).hcat(Shape(3, 3)) is None


def test_vcat():
    assert col(2).vcat(col(3)) == col(5)
    assert Shape(2, 3).vcat(Shape(4, 3)) == Shape(6, 3)
    assert Shape(2, 3).vcat(Shape(2, 4)) is None


def test_cat_with_unknown():
    assert row(2).hcat(Shape(1, None)) == Shape(1, None)
    assert Shape(None, 3).vcat(Shape(2, 3)) == Shape(None, 3)


def test_dims_equal_three_valued():
    assert dims_equal(3, 3) is True
    assert dims_equal(3, 4) is False
    assert dims_equal(3, None) is None
    assert dims_equal(None, None) is None


def test_dim_join():
    assert dim_join(3, 3) == 3
    assert dim_join(3, 4) is None


def test_describe():
    assert Shape(3, 4).describe() == "[3x4]"
    assert Shape(None, 4).describe() == "[?x4]"
