"""Tests for the observability layer: trace sessions, optimization
remarks, hotspot line attribution, and metrics reports.

The heavyweight checks here are differential: both simulator backends
must agree *exactly* on per-line cycle attribution for every example
kernel, and every loop the vectorizer leaves scalar must carry a
``missed`` remark naming the reason.
"""

import sys
from pathlib import Path

import pytest

from repro import cache
from repro.compiler import arg, compile_source
from repro.observe import Remark, TraceSession, trace as obs_trace
from repro.observe import remarks as obs_remarks
from repro.observe.hotspots import annotate_source, line_table
from repro.observe.metrics import SCHEMA, build_report

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import workloads  # noqa: E402  (needs the path tweak above)


@pytest.fixture(autouse=True)
def fresh_cache():
    cache.clear()
    yield
    cache.clear()


# ---------------------------------------------------------------------
# TraceSession mechanics
# ---------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


def test_span_nesting_and_durations():
    clock = FakeClock()
    session = TraceSession(clock=clock)
    with session.span("outer") as outer:
        clock.advance(1.0)
        with session.span("inner", "stage", detail=7) as inner:
            clock.advance(0.5)
        clock.advance(0.25)
    assert outer.depth == 0 and inner.depth == 1
    assert inner.start == pytest.approx(1.0)
    assert inner.duration == pytest.approx(0.5)
    assert outer.duration == pytest.approx(1.75)
    assert inner.args == {"detail": 7}
    assert [s.name for s in session.spans] == ["outer", "inner"]


def test_span_set_attaches_args():
    session = TraceSession()
    with session.span("s") as span:
        span.set(cycles=42)
    assert session.spans[0].args["cycles"] == 42


def test_counters_accumulate():
    session = TraceSession()
    session.counter("cache.hit")
    session.counter("cache.hit")
    session.counter("sim.runs", 3)
    assert session.counters == {"cache.hit": 2, "sim.runs": 3}


def test_disabled_session_is_inert_and_allocation_free():
    session = TraceSession(enabled=False)
    a = session.span("x")
    b = session.span("y", "cat", k=1)
    assert a is b  # the shared no-op span, not fresh objects
    with a as span:
        span.set(anything=1)
    session.counter("n")
    session.remark(Remark("missed", "p", "m"))
    assert session.spans == []
    assert session.counters == {}
    assert session.remarks == []


def test_ambient_session_stack():
    assert not obs_trace.current().enabled
    outer, inner = TraceSession(), TraceSession()
    with obs_trace.use(outer):
        assert obs_trace.current() is outer
        with obs_trace.use(inner):
            assert obs_trace.current() is inner
        assert obs_trace.current() is outer
    assert not obs_trace.current().enabled


def test_ambient_session_is_isolated_across_threads():
    # Regression: the ambient stack used to be a process-global list,
    # so two concurrent sessions saw (and popped!) each other's
    # entries.  With a ContextVar each thread starts with a fresh,
    # empty stack and counters never cross-contaminate.
    import threading

    barrier = threading.Barrier(2)
    sessions = {}
    errors = []

    def run(name):
        session = TraceSession()
        sessions[name] = session
        try:
            with obs_trace.use(session):
                barrier.wait(timeout=10)
                # Both threads are inside their own session now.
                if obs_trace.current() is not session:
                    errors.append(f"{name}: foreign ambient session")
                obs_trace.current().counter(f"only.{name}")
                barrier.wait(timeout=10)
            if obs_trace.current().enabled:
                errors.append(f"{name}: stack not restored")
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(f"{name}: {exc!r}")

    threads = [threading.Thread(target=run, args=(n,))
               for n in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert sessions["a"].counters == {"only.a": 1}
    assert sessions["b"].counters == {"only.b": 1}


def test_ambient_session_is_isolated_across_asyncio_tasks():
    # Each asyncio task copies the context at creation, so sibling
    # tasks entering their own sessions must never observe each other.
    import asyncio

    async def one(name, gate):
        session = TraceSession()
        with obs_trace.use(session):
            await gate.wait()  # force interleaving with the sibling
            assert obs_trace.current() is session
            obs_trace.current().counter(f"task.{name}")
        assert not obs_trace.current().enabled
        return session

    async def main():
        gate = asyncio.Event()
        tasks = [asyncio.create_task(one(n, gate)) for n in ("a", "b")]
        await asyncio.sleep(0)  # both tasks park on the gate
        gate.set()
        return await asyncio.gather(*tasks)

    first, second = asyncio.run(main())
    assert first.counters == {"task.a": 1}
    assert second.counters == {"task.b": 1}


def test_remark_helpers_route_to_ambient_session():
    session = TraceSession()
    with obs_trace.use(session):
        obs_remarks.missed("simd-vectorize", "why not", function="f",
                           line=3, step=2)
        obs_remarks.passed("licm", "hoisted", function="f", line=4)
        obs_remarks.analysis("pass-manager", "note", function="f")
    kinds = [r.kind for r in session.remarks]
    assert kinds == ["missed", "passed", "analysis"]
    assert session.remarks[0].args == {"step": 2}
    # Outside any session nothing is recorded anywhere.
    obs_remarks.missed("simd-vectorize", "dropped", function="f")
    assert len(session.remarks) == 3


def test_remark_format_and_dict():
    remark = Remark("missed", "simd-vectorize", "loop step is 2",
                    function="f", line=9, args={"step": 2})
    text = remark.format("kernel.m")
    assert text == ("kernel.m:9: missed [simd-vectorize] in f: "
                    "loop step is 2")
    data = remark.to_dict()
    assert data["kind"] == "missed" and data["line"] == 9
    assert data["args"] == {"step": 2}


def test_chrome_trace_schema():
    clock = FakeClock()
    session = TraceSession(clock=clock)
    with session.span("compile", "compile"):
        clock.advance(0.002)
    session.counter("cache.miss")
    data = session.to_chrome_trace()
    assert data["displayTimeUnit"] == "ms"
    x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
    c_events = [e for e in data["traceEvents"] if e["ph"] == "C"]
    assert len(x_events) == 1 and len(c_events) == 1
    assert x_events[0]["dur"] == pytest.approx(2000.0)  # microseconds
    assert c_events[0]["args"]["value"] == 1
    for event in data["traceEvents"]:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)


# ---------------------------------------------------------------------
# Compile-side instrumentation
# ---------------------------------------------------------------------

REDUCE = """
function s = f(x)
n = length(x);
s = 0;
for i = 1:n
    s = s + x(i);
end
end
"""


def test_compile_records_spans_and_remarks():
    session = TraceSession()
    with obs_trace.use(session):
        result = compile_source(REDUCE, [arg((1, 32))])
    names = [s.name for s in session.spans]
    assert "compile" in names and "parse" in names and "simd" in names
    pass_spans = [s for s in session.spans if s.category == "pass"]
    assert pass_spans, "PassManager should emit one span per pass run"
    assert result.remarks, "vectorizing the loop should leave a remark"
    assert any(r.kind == "passed" and r.pass_name == "simd-vectorize"
               for r in result.remarks)


def test_result_remarks_available_without_a_session():
    result = compile_source(REDUCE, [arg((1, 32))])
    assert any(r.pass_name == "simd-vectorize" for r in result.remarks)
    assert result.trace is not None
    assert any(s.name == "compile" for s in result.trace.spans)


def test_cache_hit_counters_and_provenance():
    session = TraceSession()
    with obs_trace.use(session):
        first = compile_source(REDUCE, [arg((1, 32))])
        second = compile_source(REDUCE, [arg((1, 32))])
    assert second is first
    assert second.cache_hits == 1
    assert session.counters["cache.miss"] == 1
    assert session.counters["cache.hit"] == 1
    # Provenance: the cached result keeps the original stage timings.
    assert second.stage_times and "total" in second.stage_times


def test_pass_manager_rounds_stats():
    result = compile_source(REDUCE, [arg((1, 32))])
    rounds = {k: v for k, v in result.pass_stats.items()
              if k.startswith("rounds[")}
    assert rounds, "per-function round counts should be recorded"
    assert all(v >= 1 for v in rounds.values())


def test_pass_manager_fixpoint_warning_remark():
    from repro.ir.passes.manager import PassManager

    class Restless:
        name = "restless"

        def run(self, func):
            return True  # never converges

    from repro.frontend.parser import parse
    from repro.ir.builder import lower_program
    from repro.semantics.inference import specialize_program

    sprog = specialize_program(parse("function y = f(x)\ny = x + 1;\nend"),
                               "f", [arg((1, 4))])
    module = lower_program(sprog, mode="fused")

    session = TraceSession()
    with obs_trace.use(session):
        manager = PassManager([Restless()], max_rounds=3)
        manager.run(module)
    warnings = [r for r in session.remarks
                if r.pass_name == "pass-manager" and r.kind == "analysis"]
    assert warnings and "max_rounds=3" in warnings[0].message


# ---------------------------------------------------------------------
# Remarks coverage: every scalar loop must say why
# ---------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fir", "iir", "cdot", "fft", "matmul",
                                  "xcorr"])
def test_every_example_kernel_loop_has_a_remark(name):
    """Each example kernel compile leaves simd-vectorize remarks, and
    every ``missed`` remark names a concrete reason."""
    w = workloads.workload_by_name(name)
    result = compile_source(w.source, w.arg_types, entry=w.entry,
                            filename=f"{w.entry}.m")
    simd = [r for r in result.remarks if r.pass_name == "simd-vectorize"]
    assert simd, f"{name}: no vectorizer remarks at all"
    for remark in simd:
        assert remark.kind in ("passed", "missed")
        assert remark.message
        assert remark.line > 0, "remarks must map to a source line"
        if remark.kind == "missed":
            # The message must carry an actual reason, not a stub.
            assert len(remark.message) > 15


def test_missed_remark_reasons_are_specific():
    stride2 = """
function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:2:n
    y(i) = x(i) * 2;
end
end
"""
    result = compile_source(stride2, [arg((1, 32))])
    missed = [r for r in result.remarks
              if r.pass_name == "simd-vectorize" and r.kind == "missed"]
    assert any("step is 2" in r.message for r in missed)
    assert all(r.line == 5 for r in missed)


# ---------------------------------------------------------------------
# Hotspots: differential backend agreement
# ---------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fir", "iir", "cdot", "fft", "matmul",
                                  "xcorr"])
def test_hotspot_backends_agree_exactly(name):
    w = workloads.workload_by_name(name)
    result = compile_source(w.source, w.arg_types, entry=w.entry,
                            filename=f"{w.entry}.m")
    inputs = w.inputs(seed=3)
    ref = result.simulate(inputs, backend="reference", hotspots=True)
    com = result.simulate(inputs, backend="compiled", hotspots=True)
    assert ref.line_cycles == com.line_cycles
    assert sum(ref.line_cycles.values()) == ref.report.total
    assert ref.report.total == com.report.total


def test_hotspots_require_profiled_run():
    result = compile_source(REDUCE, [arg((1, 8))])
    import numpy as np
    run = result.simulate([np.arange(8.0)])
    assert run.line_cycles is None
    with pytest.raises(ValueError, match="hotspots=True"):
        run.hotspots()


def test_hotspots_table_sorted_hottest_first():
    assert line_table({3: 10, 7: 50, 2: 10}) == [(7, 50), (2, 10), (3, 10)]


def test_annotate_source_renders_all_lines():
    import numpy as np
    result = compile_source(REDUCE, [arg((1, 16))],
                            filename="reduce.m")
    run = result.simulate([np.arange(16.0)], hotspots=True)
    text = annotate_source(result.source, run.line_cycles)
    assert f"total cycles: {run.report.total}" in text
    assert "for i = 1:n" in text
    assert "s = s + x(i);" in text


# ---------------------------------------------------------------------
# Metrics reports
# ---------------------------------------------------------------------


def test_build_report_shape():
    import numpy as np
    session = TraceSession()
    with obs_trace.use(session):
        result = compile_source(REDUCE, [arg((1, 16))])
        run = result.simulate([np.arange(16.0)], hotspots=True)
    report = build_report(result=result, run=run, session=session)
    assert report["schema"] == SCHEMA
    assert report["compile"]["entry"] == result.entry_name
    assert report["compile"]["remarks"]
    assert report["simulation"]["cycles"] == run.report.total
    hot = report["simulation"]["hotspots"]
    assert sum(row["cycles"] for row in hot) == run.report.total
    assert report["counters"]["sim.runs"] == 1
    assert any(s["name"] == "simulate" for s in report["spans"])
    assert "cache" in report
    # The whole report must be JSON-serializable.
    import json
    json.dumps(report)


def test_build_report_compile_only():
    result = compile_source(REDUCE, [arg((1, 16))])
    report = build_report(result=result)
    assert "simulation" not in report and "spans" not in report
    assert report["compile"]["cache_hits"] == 0
