"""Regression tests for the golden-model bugs the differential fuzzer
caught.

Each test pins one fixed bug at the narrowest level that exhibits it
(unit where possible, differential `check_program` where the bug lived
in lowering/optimization).  The corresponding minimal reproducers live
in ``tests/fuzz_corpus/`` and are replayed through the full oracle by
``test_fuzz.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import check_program, golden_outputs
from repro import numeric
from repro.cache import CompilationCache
from repro.compiler import arg
from repro.observe import TraceSession, trace as obs_trace


# ---------------------------------------------------------------------------
# numeric.range_count: magnitude-relative colon fencepost (interpreter
# and compile-time shape inference share it)


def test_range_count_does_not_swallow_below_stop_gap():
    # 0:1:(5 - 1e-11) has a genuine below-integer quotient; the old
    # fixed epsilon absorbed it and produced a 6th element beyond stop.
    assert numeric.range_count(0.0, 1.0, 5.0 - 1e-11) == 5


def test_range_count_fractional_step_inclusive_stop():
    assert numeric.range_count(0.0, 0.1, 1.0) == 11


def test_range_count_large_magnitude_keeps_last_element():
    # Representation error scales with |start|/|step|; a fixed epsilon
    # loses the final element here.
    assert numeric.range_count(1e9, 1.0, 1e9 + 3.0) == 4


def test_range_count_degenerate_inputs():
    assert numeric.range_count(0.0, 0.0, 5.0) == 0
    assert numeric.range_count(0.0, 1.0, float("nan")) == 0
    assert numeric.range_count(5.0, 1.0, 0.0) == 0
    with pytest.raises(OverflowError):
        numeric.range_count(0.0, 1.0, float("inf"))


def test_range_fencepost_matches_between_compiler_and_interpreter():
    src = """function [n, m] = f()
  n = length(0:1:(5 - 1e-11));
  m = length(0:0.1:1);
end
"""
    _, outputs = check_program(src, args=[], inputs=[], nargout=2)
    assert float(np.asarray(outputs[0])) == 5.0
    assert float(np.asarray(outputs[1])) == 11.0


# ---------------------------------------------------------------------------
# Interpreter: matrix-column for iteration binds by value


def test_matrix_for_loop_var_is_a_copy():
    src = """function [s, a] = f()
  a = [1, 2; 3, 4];
  s = 0;
  for v = a
    v = v + 100;
    s = s + v(1) + v(2);
  end
end
"""
    s, a = golden_outputs(src, "f", [], nargout=2)
    assert np.asarray(s).item() == 1 + 3 + 2 + 4 + 400
    assert np.array_equal(np.asarray(a), [[1, 2], [3, 4]])


# ---------------------------------------------------------------------------
# Interpreter: growth-by-assignment preserves the promoted dtype


def test_growth_from_empty_keeps_complex_dtype():
    src = """function d = f()
  a = [];
  a(2) = 2i;
  d = imag(a(2));
end
"""
    (d,) = golden_outputs(src, "f", [], nargout=1)
    assert np.asarray(d).item() == 2.0


# ---------------------------------------------------------------------------
# Simulators: C pow semantics at the overflow edge


def test_c_pow_overflow_returns_inf():
    big = 1e300
    assert numeric.c_pow(big, 2.0) == float("inf")
    assert numeric.c_pow(-big, 3.0) == float("-inf")  # odd exponent
    assert numeric.c_pow(-big, 2.0) == float("inf")
    assert numeric.c_pow(0.0, -1.0) == float("inf")
    assert numeric.c_pow(big, 2) == float("inf")


def test_pow_overflow_agrees_across_engines():
    src = """function v = f(x)
  v = x;
  for k = 1:8
    v = v .^ 3;
  end
end
"""
    with np.errstate(over="ignore"):
        _, outputs = check_program(src, args=[arg()], inputs=[34.0])
    assert np.isinf(np.asarray(outputs[0])).all()


# ---------------------------------------------------------------------------
# Builder: whole-array assignment reading the destination


def test_matrix_literal_reading_own_destination():
    src = """function v = f(x)
  v = [x, 2, 3, 4];
  v = [v(2), v(1), v(4), v(3)];
end
"""
    _, outputs = check_program(src, args=[arg()], inputs=[1.0])
    assert np.array_equal(np.asarray(outputs[0]), [[2, 1, 4, 3]])


def test_shape_changing_reassignment_is_rejected():
    # `a = a'` on a non-square matrix changes a's dimensions, but the
    # compiler lays storage out once from the final type — lowering the
    # intermediate with the wrong leading dimension silently permutes
    # elements.  Outside the static-shape subset; must be a clean error.
    from repro.compiler import compile_source
    from repro.errors import UnsupportedFeatureError

    src = """function a = f(a)
  a = a';
  a = a';
end
"""
    with pytest.raises(UnsupportedFeatureError, match="shape"):
        compile_source(src, args=[arg((2, 3))], use_cache=False)


# ---------------------------------------------------------------------------
# Builder: complex storage read at a real-typed program point


def test_real_only_op_before_variable_turns_complex():
    src = """function w = f(c)
  v = -3;
  w = sign(v);
  if c > 0
    v = 2i;
  end
  w = w + real(v);
end
"""
    _, taken = check_program(src, args=[arg()], inputs=[2.0])
    assert float(np.asarray(taken[0])) == -1.0  # sign(-3) + real(2i)
    _, skipped = check_program(src, args=[arg()], inputs=[-2.0])
    assert float(np.asarray(skipped[0])) == -4.0  # sign(-3) + (-3)


# ---------------------------------------------------------------------------
# Builder: generated temporaries can never shadow source variables


def test_reduction_counter_does_not_shadow_user_loop_variable():
    # sum()'s lowered counter used to be named k<N>; with a user loop
    # variable of the same name the inner loop clobbered the outer one.
    src = """function v2 = f()
  v2 = 1;
  for k4 = 1:3
    v2 = (v2 .* k4) - sum(zeros(1, 3));
  end
end
"""
    _, outputs = check_program(src, args=[], inputs=[])
    assert float(np.asarray(outputs[0])) == 6.0


# ---------------------------------------------------------------------------
# Vectorizer: function outputs are live after every loop


def test_vectorizer_keeps_loop_writing_only_an_output():
    src = """function v1 = f(p0)
  v1 = 0;
  for k4 = 1:4
    v1 = p0(end - 4);
  end
end
"""
    x = np.array([[-0.0625], [-2.625], [-3.8125], [3.5], [1.0]])
    _, outputs = check_program(src, args=[arg((5, 1))], inputs=[x])
    assert float(np.asarray(outputs[0])) == -0.0625


# ---------------------------------------------------------------------------
# C emitter + host harness (exercised through gcc when available)


def test_complex_reduction_and_scalar_complex_param():
    src = """function s = f(z, a)
  s = sum(z) + a;
end
"""
    z = np.array([[1 + 2j, -0.5 + 0.25j, 3 - 1j, 1.5j]])
    a = np.array([[0.5 - 1.25j]])
    _, outputs = check_program(
        src, args=[arg((1, 4), complex=True), arg(complex=True)],
        inputs=[z, a], with_gcc=True)
    expected = complex(np.sum(z)) + complex(a[0, 0])
    assert np.allclose(np.asarray(outputs[0]), expected)


# ---------------------------------------------------------------------------
# Cache: disk-layer failures are counted, not swallowed


def test_cache_disk_errors_surface_in_stats_and_counters(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = CompilationCache(cache_dir=cache_dir)
    session = TraceSession()
    with obs_trace.use(session):
        # Corrupt entry: read fails, is counted, and behaves as a miss.
        corrupt = cache_dir / "de" / "deadbeef.pkl"
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_bytes(b"not a pickle")
        assert cache._disk_get("deadbeef") is None
        # Write failure: an unpicklable result.
        cache._disk_put("cafebabe", lambda: None)
    stats = cache.stats()
    assert stats["disk_read_errors"] == 1
    assert stats["disk_write_errors"] == 1
    assert session.counters.get("cache.disk_read_error") == 1
    assert session.counters.get("cache.disk_write_error") == 1
    assert any("disk cache" in r.message for r in session.remarks)
