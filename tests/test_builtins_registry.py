"""Unit tests for the builtin-signature registry."""

import pytest

from repro.errors import SemanticError
from repro.frontend.parser import parse
from repro.semantics import builtins
from repro.semantics.inference import specialize_program
from repro.semantics.shapes import SCALAR, Shape
from repro.semantics.types import DType, MType


def infer_expr_type(expr_text: str, **vars_) -> MType:
    """Infer the type of one expression over given variable types."""
    params = ", ".join(vars_)
    source = f"function y = probe({params})\ny = {expr_text};\nend"
    sp = specialize_program(parse(source), "probe", list(vars_.values()))
    # Read the variable binding (keeps compile-time constants), not the
    # published result type (which strips them).
    return sp.entry.final_env.lookup("y").mtype


ROW8 = MType(DType.DOUBLE, False, Shape(1, 8))
MAT34 = MType(DType.DOUBLE, False, Shape(3, 4))
CROW8 = MType(DType.DOUBLE, True, Shape(1, 8))


def test_registry_lookup():
    assert builtins.lookup("zeros") is not None
    assert builtins.lookup("nosuch") is None
    assert builtins.is_builtin("sum")


def test_constants_table():
    assert builtins.CONSTANTS["pi"].value == pytest.approx(3.14159265358979)
    assert builtins.CONSTANTS["true"].dtype is DType.LOGICAL
    assert builtins.CONSTANTS["i"].is_complex


def test_zeros_shapes():
    assert infer_expr_type("zeros(3)").shape == Shape(3, 3)
    assert infer_expr_type("zeros(2, 5)").shape == Shape(2, 5)
    assert infer_expr_type("zeros(1, 1)").shape == SCALAR


def test_ones_and_eye():
    assert infer_expr_type("ones(4, 2)").shape == Shape(4, 2)
    assert infer_expr_type("eye(3)").shape == Shape(3, 3)
    assert infer_expr_type("eye(2, 4)").shape == Shape(2, 4)


def test_linspace_default_and_explicit():
    assert infer_expr_type("linspace(0, 1)").shape == Shape(1, 100)
    assert infer_expr_type("linspace(0, 1, 7)").shape == Shape(1, 7)


def test_length_numel_size():
    assert infer_expr_type("length(A)", A=MAT34).value == 4.0
    assert infer_expr_type("numel(A)", A=MAT34).value == 12.0
    assert infer_expr_type("size(A, 1)", A=MAT34).value == 3.0
    assert infer_expr_type("size(A, 2)", A=MAT34).value == 4.0


def test_isreal_isempty():
    assert infer_expr_type("isreal(x)", x=ROW8).value is True
    assert infer_expr_type("isreal(z)", z=CROW8).value is False
    assert infer_expr_type("isempty(x)", x=ROW8).value is False


def test_elementwise_preserves_shape():
    assert infer_expr_type("sin(A)", A=MAT34).shape == Shape(3, 4)
    assert infer_expr_type("abs(z)", z=CROW8).shape == Shape(1, 8)


def test_abs_of_complex_is_real():
    t = infer_expr_type("abs(z)", z=CROW8)
    assert not t.is_complex


def test_real_imag_conj():
    assert not infer_expr_type("real(z)", z=CROW8).is_complex
    assert not infer_expr_type("imag(z)", z=CROW8).is_complex
    assert infer_expr_type("conj(z)", z=CROW8).is_complex


def test_reduction_of_vector_is_scalar():
    assert infer_expr_type("sum(x)", x=ROW8).shape == SCALAR
    assert infer_expr_type("prod(x)", x=ROW8).shape == SCALAR
    assert infer_expr_type("mean(x)", x=ROW8).shape == SCALAR


def test_reduction_of_matrix_is_row():
    assert infer_expr_type("sum(A)", A=MAT34).shape == Shape(1, 4)


def test_reduction_with_dim():
    assert infer_expr_type("sum(A, 1)", A=MAT34).shape == Shape(1, 4)
    assert infer_expr_type("sum(A, 2)", A=MAT34).shape == Shape(3, 1)


def test_min_two_arg_elementwise():
    t = infer_expr_type("min(x, 0)", x=ROW8)
    assert t.shape == Shape(1, 8)


def test_minmax_complex_rejected():
    with pytest.raises(SemanticError, match="complex"):
        infer_expr_type("max(z)", z=CROW8)


def test_dot_requires_equal_lengths():
    with pytest.raises(SemanticError, match="lengths"):
        infer_expr_type("dot(a, b)", a=ROW8,
                        b=MType(DType.DOUBLE, False, Shape(1, 9)))


def test_conv_length_rule():
    t = infer_expr_type("conv(a, b)", a=ROW8,
                        b=MType(DType.DOUBLE, False, Shape(1, 3)))
    assert t.shape == Shape(1, 10)


def test_conv_column_when_both_columns():
    a = MType(DType.DOUBLE, False, Shape(8, 1))
    b = MType(DType.DOUBLE, False, Shape(3, 1))
    assert infer_expr_type("conv(a, b)", a=a, b=b).shape == Shape(10, 1)


def test_fft_is_complex_same_length():
    t = infer_expr_type("fft(x)", x=ROW8)
    assert t.is_complex and t.shape == Shape(1, 8)


def test_filter_shape_follows_input():
    t = infer_expr_type("filter(b, a, x)",
                        b=MType(DType.DOUBLE, False, Shape(1, 3)),
                        a=MType(DType.DOUBLE, False, Shape(1, 3)),
                        x=ROW8)
    assert t.shape == Shape(1, 8)


def test_reshape_checks_element_count():
    assert infer_expr_type("reshape(A, 2, 6)", A=MAT34).shape == Shape(2, 6)
    with pytest.raises(SemanticError, match="reshape"):
        infer_expr_type("reshape(A, 2, 5)", A=MAT34)


def test_casts():
    assert infer_expr_type("single(x)", x=ROW8).dtype is DType.SINGLE
    assert infer_expr_type("int16(x)", x=ROW8).dtype is DType.INT16
    assert infer_expr_type("logical(x)", x=ROW8).dtype is DType.LOGICAL


def test_complex_builtin():
    t = infer_expr_type("complex(x, x)", x=ROW8)
    assert t.is_complex and t.shape == Shape(1, 8)


def test_const_folding_of_math():
    assert infer_expr_type("floor(7 / 2)").value == 3.0
    assert infer_expr_type("round(2.5)").value == 3.0
    assert infer_expr_type("round(-2.5)").value == -3.0
    assert infer_expr_type("fix(-2.7)").value == -2.0
    assert infer_expr_type("abs(-4)").value == 4
