"""Differential tests: compiled-closure backend vs tree-walking reference.

The compiled backend must be *indistinguishable* from the reference
executor: bit-identical outputs, identical cycle totals, identical
per-category breakdowns, identical custom-instruction counts, identical
stdout.  These tests sweep the six example DSP kernels (optimized and
baseline pipelines), hand-written control-flow torture programs, and
hypothesis-generated kernels.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, arg, compile_source
from repro.errors import SimulationError
from repro.sim.compiled import CompiledSimulator
from repro.sim.machine import Simulator

KERNEL_DIR = Path(__file__).resolve().parents[1] / "examples" / "mlab"

#: (entry, arg specs, input builder) for the six example kernels, at
#: sizes small enough to keep the double execution fast.
_KERNELS = {
    "fir": ("fir",
            [arg((1, 64), dtype="single"), arg((1, 8), dtype="single")],
            lambda rng: [rng.standard_normal((1, 64)).astype(np.float32),
                         rng.standard_normal((1, 8)).astype(np.float32)]),
    "iir_biquad": ("iir_biquad",
                   [arg((1, 64)), arg((1, 3)), arg((1, 3))],
                   lambda rng: [rng.standard_normal((1, 64)),
                                np.array([[0.2, 0.35, 0.2]]),
                                np.array([[1.0, -0.4, 0.15]])]),
    "cdot": ("cdot",
             [arg((1, 48), complex=True), arg((1, 48), complex=True)],
             lambda rng: [
                 (rng.standard_normal((1, 48))
                  + 1j * rng.standard_normal((1, 48))),
                 (rng.standard_normal((1, 48))
                  + 1j * rng.standard_normal((1, 48)))]),
    "fft_spectrum": ("fft_spectrum",
                     [arg((1, 32))],
                     lambda rng: [rng.standard_normal((1, 32))]),
    "matmul": ("matmul",
               [arg((8, 8), dtype="single"), arg((8, 8), dtype="single")],
               lambda rng: [
                   rng.standard_normal((8, 8)).astype(np.float32),
                   rng.standard_normal((8, 8)).astype(np.float32)]),
    "xcorr_kernel": ("xcorr_kernel",
                     [arg((1, 32), dtype="single"),
                      arg((1, 64), dtype="single")],
                     lambda rng: [
                         rng.standard_normal((1, 32)).astype(np.float32),
                         rng.standard_normal((1, 64)).astype(np.float32)]),
}


def assert_backends_agree(result, inputs):
    """Run both executors on one compilation; everything must match."""
    ref = Simulator(result.module, result.processor).run(list(inputs))
    comp = CompiledSimulator(result.module, result.processor) \
        .run(list(inputs))
    assert len(ref.outputs) == len(comp.outputs)
    for i, (a, b) in enumerate(zip(ref.outputs, comp.outputs)):
        assert np.array_equal(np.asarray(a), np.asarray(b)), \
            f"output {i} differs between backends"
        assert type(a) is type(b), \
            f"output {i} type differs: {type(a)} vs {type(b)}"
    assert ref.report.total == comp.report.total
    assert ref.report.by_category == comp.report.by_category
    assert ref.report.instruction_counts == comp.report.instruction_counts
    assert ref.stdout == comp.stdout
    return ref, comp


def check_source(source, args, inputs, entry=None,
                 processor="vliw_simd_dsp"):
    for options in (None, CompilerOptions.baseline()):
        result = compile_source(source, args=args, entry=entry,
                                processor=processor, options=options)
        assert_backends_agree(result, inputs)


# ----------------------------------------------------------------------
# The six example DSP kernels
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", sorted(_KERNELS))
@pytest.mark.parametrize("mode", ["optimized", "baseline"])
def test_kernel_parity(kernel, mode):
    entry, specs, make_inputs = _KERNELS[kernel]
    source = (KERNEL_DIR / f"{entry}.m").read_text()
    options = CompilerOptions.baseline() if mode == "baseline" else None
    result = compile_source(source, args=specs, entry=entry,
                            options=options)
    inputs = make_inputs(np.random.default_rng(3))
    assert_backends_agree(result, inputs)


def test_kernel_parity_scalar_processor():
    entry, specs, make_inputs = _KERNELS["fir"]
    source = (KERNEL_DIR / f"{entry}.m").read_text()
    result = compile_source(source, args=specs, entry=entry,
                            processor="generic_scalar_dsp")
    assert_backends_agree(result, make_inputs(np.random.default_rng(5)))


# ----------------------------------------------------------------------
# Control flow: break / continue / early return / while / zero-trip
# ----------------------------------------------------------------------


def test_break_and_continue_parity():
    src = """
function s = f(x)
s = 0;
for k = 1:length(x)
    if x(k) < 0
        continue;
    end
    if s > 10
        break;
    end
    s = s + x(k);
end
end
"""
    x = np.array([[3.0, -1.0, 4.0, -2.0, 5.0, 6.0, -7.0, 8.0]])
    check_source(src, [arg((1, 8))], [x])


def test_early_return_parity():
    src = """
function y = f(x)
y = 0;
for k = 1:length(x)
    if x(k) > 2
        y = x(k);
        return;
    end
    y = y + 1;
end
y = y * 10;
end
"""
    hits = np.array([[0.5, 3.0, 1.0, 1.0]])
    misses = np.array([[0.5, 0.25, 1.0, 1.5]])
    check_source(src, [arg((1, 4))], [hits])
    check_source(src, [arg((1, 4))], [misses])


def test_while_loop_parity():
    src = """
function n = f(x)
n = 0;
while x > 1
    if mod(x, 2) == 0
        x = x / 2;
    else
        x = 3 * x + 1;
    end
    n = n + 1;
end
end
"""
    check_source(src, [arg()], [27.0])


def test_zero_trip_loop_parity():
    src = """
function s = f(n)
s = 1;
for k = 1:n
    s = s + k;
end
s = s * 2;
end
"""
    check_source(src, [arg()], [0.0])
    check_source(src, [arg()], [4.0])


def test_short_circuit_guarded_load_parity():
    # The right operand of && guards an out-of-range load; it must not
    # be evaluated (nor charged) when the left side already decides.
    src = """
function s = f(x, n)
s = 0;
for k = 1:n
    if k <= length(x) && x(k) > 0
        s = s + x(k);
    end
end
end
"""
    x = np.array([[1.0, -2.0, 3.0]])
    check_source(src, [arg((1, 3)), arg()], [x, 6.0])


def test_nested_function_call_parity():
    src = """
function y = outer(x)
t = helper(x, 2.0);
y = helper(t, 0.5) + 1;
end

function y = helper(v, s)
y = v * s;
end
"""
    check_source(src, [arg()], [3.0], entry="outer")


def test_emit_stdout_parity():
    src = """
function f(x)
for k = 1:3
    fprintf('step %d: %.2f\\n', k, x * k);
end
end
"""
    check_source(src, [arg()], [1.5])


def test_math_functions_parity():
    src = """
function y = f(x)
y = sqrt(abs(x)) + sin(x) * cos(x) + exp(-abs(x)) + floor(x) ...
    + round(x) + sign(x) + mod(x, 3);
end
"""
    for value in (2.7, -1.3, 0.0):
        check_source(src, [arg()], [value])


def test_complex_arithmetic_parity():
    src = """
function y = f(a, b)
y = real(a * b + conj(a)) + abs(b) + imag(a / b);
end
"""
    check_source(src, [arg(complex=True), arg(complex=True)],
                 [1.5 + 2.5j, -0.5 + 1.0j])


def test_step_limit_guard_compiled():
    src = "function y = f()\ny = 0;\nwhile 1 > 0\ny = y + 1;\nend\nend"
    result = compile_source(src, args=[])
    simulator = CompiledSimulator(result.module, result.processor,
                                  max_steps=10000)
    with pytest.raises(SimulationError, match="step limit"):
        simulator.run([])


def test_out_of_bounds_detected_compiled():
    src = "function y = f(x, i)\ny = x(i);\nend"
    result = compile_source(src, args=[arg((1, 4)), arg()])
    simulator = CompiledSimulator(result.module, result.processor)
    with pytest.raises(SimulationError, match="out of bounds"):
        simulator.run([np.zeros((1, 4)), 9.0])


def test_compiled_program_reusable_across_runs():
    src = "function s = f(x)\ns = sum(x .* x);\nend"
    result = compile_source(src, args=[arg((1, 16))])
    simulator = CompiledSimulator(result.module, result.processor)
    rng = np.random.default_rng(0)
    for _ in range(3):
        x = rng.standard_normal((1, 16))
        ref = Simulator(result.module, result.processor).run([x])
        comp = simulator.run([x])
        assert np.array_equal(np.asarray(ref.outputs[0]),
                              np.asarray(comp.outputs[0]))
        assert ref.report.total == comp.report.total
        assert ref.report.by_category == comp.report.by_category


# ----------------------------------------------------------------------
# Hypothesis-generated programs
# ----------------------------------------------------------------------

_ops = st.sampled_from(["+", "-", ".*"])
_chain = st.lists(st.tuples(_ops, st.sampled_from(["a", "b", "2", "0.5"])),
                  min_size=1, max_size=4)


def _render_chain(chain) -> str:
    expr = "a"
    for op, operand in chain:
        expr = f"({expr} {op} {operand})"
    return expr


@given(_chain, st.integers(min_value=1, max_value=24),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=25, deadline=None)
def test_elementwise_program_parity(chain, n, seed):
    source = f"function y = f(a, b)\ny = {_render_chain(chain)};\nend"
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, n)), rng.standard_normal((1, n))]
    check_source(source, [arg((1, n)), arg((1, n))], inputs)


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=15, deadline=None)
def test_reduction_program_parity(n, seed):
    source = """
function s = f(a, b)
s = 0;
for k = 1:length(a)
    s = s + a(k) * b(k);
end
end
"""
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, n)), rng.standard_normal((1, n))]
    check_source(source, [arg((1, n)), arg((1, n))], inputs)


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=15, deadline=None)
def test_sliding_window_program_parity(n, m, seed):
    source = """
function y = f(x, h)
N = length(x);
M = length(h);
y = zeros(1, N);
for i = 1:N
    acc = 0;
    kmax = min(i, M);
    for k = 1:kmax
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end
"""
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, n)), rng.standard_normal((1, m))]
    check_source(source, [arg((1, n)), arg((1, m))], inputs)
