"""Host-compilation integration: every kernel's generated C runs on gcc.

Smaller sizes than E4 (this is the regression suite, not the paper
table); strict C89 flags throughout.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from workloads import kernel_source

from repro.compiler import CompilerOptions, arg, compile_source
from repro.mlab.interp import MatlabInterpreter

from helpers import HAVE_GCC

pytestmark = pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")

RNG = np.random.default_rng(9)

SMALL = {
    "fir": ([arg((1, 48), dtype="single"), arg((1, 8), dtype="single")],
            [RNG.standard_normal((1, 48)).astype(np.float32),
             (RNG.standard_normal((1, 8)) / 8).astype(np.float32)],
            2e-5),
    "iir_biquad": ([arg((1, 48)), arg((1, 3)), arg((1, 3))],
                   [RNG.standard_normal((1, 48)),
                    np.array([[0.2, 0.35, 0.2]]),
                    np.array([[1.0, -0.4, 0.15]])], 1e-9),
    "cdot": ([arg((1, 32), complex=True), arg((1, 32), complex=True)],
             [RNG.standard_normal((1, 32)) +
              1j * RNG.standard_normal((1, 32)),
              RNG.standard_normal((1, 32)) +
              1j * RNG.standard_normal((1, 32))], 1e-9),
    "fft_spectrum": ([arg((1, 32))], [RNG.standard_normal((1, 32))],
                     1e-8),
    "matmul": ([arg((8, 8)), arg((8, 8))],
               [RNG.standard_normal((8, 8)),
                RNG.standard_normal((8, 8))], 1e-9),
    "xcorr_kernel": ([arg((1, 16)), arg((1, 32))],
                     [RNG.standard_normal((1, 16)),
                      RNG.standard_normal((1, 32))], 1e-9),
}


@pytest.mark.parametrize("entry", list(SMALL))
@pytest.mark.parametrize("mode", ["optimized", "baseline"])
def test_kernel_gcc_roundtrip(entry, mode):
    from repro.backend.harness import run_via_gcc
    args, inputs, tol = SMALL[entry]
    source = kernel_source(entry if entry != "iir_biquad" else "iir_biquad")
    options = CompilerOptions.baseline() if mode == "baseline" else None
    result = compile_source(source, args=args, entry=entry,
                            options=options)
    golden = MatlabInterpreter(source).call(entry, list(inputs))[0]
    outputs = run_via_gcc(result, list(inputs))
    produced = np.atleast_2d(np.asarray(outputs[0]))
    assert produced.shape == np.asarray(golden).shape
    assert np.allclose(produced, golden, atol=tol, rtol=tol), \
        f"{entry}/{mode}: gcc output mismatch"
