"""Integration tests over the shipped DSP benchmark kernels.

Checks every kernel at several sizes against the golden interpreter, on
both pipelines and all three shipped processors, plus speedup sanity on
the SIMD target.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from workloads import default_workloads, kernel_source, workload_by_name

from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir.verifier import verify_module
from repro.mlab.interp import MatlabInterpreter
from repro.sim.machine import Simulator

KERNEL_NAMES = [w.name for w in default_workloads()]


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@pytest.mark.parametrize("processor", ["generic_scalar_dsp",
                                       "vliw_simd_dsp", "wide_simd_dsp"])
def test_kernel_correct_on_all_targets(kernel, processor):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=101)
    golden = workload.golden(inputs)
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry, processor=processor)
    verify_module(result.module)
    run = result.simulate(list(inputs))
    assert np.allclose(np.asarray(run.outputs[0]), golden,
                       atol=workload.tolerance, rtol=workload.tolerance)


@pytest.mark.parametrize("scale", [1, 2])
def test_fir_sizes(scale):
    source = kernel_source("fir")
    n = 64 * scale
    taps = 8
    args = [arg((1, n)), arg((1, taps))]
    rng = np.random.default_rng(scale)
    x = rng.standard_normal((1, n))
    h = rng.standard_normal((1, taps))
    result = compile_source(source, args=args, entry="fir")
    run = result.simulate([x, h])
    expected = np.convolve(x.ravel(), h.ravel())[:n]
    assert np.allclose(run.outputs[0].ravel(), expected)


@pytest.mark.parametrize("n", [8, 16, 64, 256])
def test_fft_spectrum_sizes(n):
    source = kernel_source("fft_spectrum")
    rng = np.random.default_rng(n)
    x = rng.standard_normal((1, n))
    result = compile_source(source, args=[arg((1, n))],
                            entry="fft_spectrum")
    run = result.simulate([x])
    expected = np.abs(np.fft.fft(x.ravel())) ** 2
    assert np.allclose(run.outputs[0].ravel(), expected, atol=1e-8,
                       rtol=1e-8)


def test_fft_length_two():
    source = kernel_source("fft_spectrum")
    result = compile_source(source, args=[arg((1, 2))],
                            entry="fft_spectrum")
    run = result.simulate([np.array([[3.0, -1.0]])])
    expected = np.abs(np.fft.fft([3.0, -1.0])) ** 2
    assert np.allclose(run.outputs[0].ravel(), expected)


def test_matmul_rectangular():
    source = kernel_source("matmul")
    args = [arg((3, 7)), arg((7, 5))]
    rng = np.random.default_rng(7)
    a = rng.standard_normal((3, 7))
    b = rng.standard_normal((7, 5))
    result = compile_source(source, args=args, entry="matmul")
    run = result.simulate([a, b])
    assert np.allclose(np.asarray(run.outputs[0]), a @ b)


def test_iir_stability_long_run():
    source = kernel_source("iir_biquad")
    n = 1024
    args = [arg((1, n)), arg((1, 3)), arg((1, 3))]
    rng = np.random.default_rng(3)
    x = rng.standard_normal((1, n))
    b = np.array([[0.2, 0.35, 0.2]])
    a = np.array([[1.0, -0.4, 0.15]])
    result = compile_source(source, args=args, entry="iir_biquad")
    run = result.simulate([x, b, a])
    golden = MatlabInterpreter(source).call("iir_biquad", [x, b, a])[0]
    assert np.allclose(np.asarray(run.outputs[0]), np.asarray(golden))
    assert np.max(np.abs(run.outputs[0])) < 100  # filter is stable


def test_speedup_sanity_on_simd_target():
    workload = workload_by_name("xcorr")
    inputs = workload.inputs(seed=55)
    optimized = compile_source(workload.source, args=workload.arg_types,
                               entry=workload.entry)
    baseline = compile_source(workload.source, args=workload.arg_types,
                              entry=workload.entry,
                              options=CompilerOptions.baseline())
    cycles_opt = Simulator(optimized.module, optimized.processor) \
        .run(list(inputs)).report.total
    cycles_base = Simulator(baseline.module, baseline.processor) \
        .run(list(inputs)).report.total
    assert cycles_base / cycles_opt > 4.0


def test_cdot_matches_vdot():
    workload = workload_by_name("cdot")
    inputs = workload.inputs(seed=77)
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry)
    run = result.simulate(list(inputs))
    expected = np.vdot(inputs[0].ravel(), inputs[1].ravel())
    assert abs(run.outputs[0] - expected) < 1e-9 * len(inputs[0].ravel())
