"""Differential battery: many small MATLAB programs, four execution paths.

Each program is executed by the golden interpreter and by the simulator
on both baseline and optimized IR; selected programs additionally round-
trip through gcc.  Any disagreement localizes a compiler bug.
"""

import numpy as np
import pytest

from repro.compiler import arg

from helpers import check_program

RNG = np.random.default_rng(2024)


def rrow(n):
    return RNG.standard_normal((1, n))


def crow(n):
    return RNG.standard_normal((1, n)) + 1j * RNG.standard_normal((1, n))


CASES = [
    # (name, source, args, inputs, nargout, tol, with_gcc)
    ("polyval_horner", """
function y = f(c, x)
y = 0;
for k = 1:length(c)
    y = y * x + c(k);
end
end
""", [arg((1, 5)), arg()], [rrow(5), 0.7], 1, 1e-9, True),

    ("running_max", """
function y = f(x)
y = zeros(1, length(x));
m = x(1);
for k = 1:length(x)
    m = max(m, x(k));
    y(k) = m;
end
end
""", [arg((1, 20))], [rrow(20)], 1, 1e-12, False),

    ("moving_average", """
function y = f(x, w)
n = length(x);
y = zeros(1, n);
for k = 1:n
    lo = max(1, k - w + 1);
    acc = 0;
    for j = lo:k
        acc = acc + x(j);
    end
    y(k) = acc / (k - lo + 1);
end
end
""", [arg((1, 24)), arg(value=4.0)], [rrow(24), 4.0], 1, 1e-12, True),

    ("normalize", """
function y = f(x)
mu = mean(x);
s = sqrt(mean((x - mu) .^ 2));
y = (x - mu) ./ s;
end
""", [arg((1, 32))], [rrow(32)], 1, 1e-9, False),

    ("complex_rotation", """
function y = f(z, theta)
w = complex(cos(theta), sin(theta));
y = z .* w;
end
""", [arg((1, 12), complex=True), arg()], [crow(12), 0.8], 1, 1e-12,
     True),

    ("energy_and_peak", """
function [e, p] = f(x)
e = sum(x .* x);
p = max(abs(x));
end
""", [arg((1, 16))], [rrow(16)], 2, 1e-12, False),

    ("matrix_vector", """
function y = f(A, x)
y = A * x;
end
""", [arg((6, 6)), arg((6, 1))],
     [RNG.standard_normal((6, 6)), RNG.standard_normal((6, 1))], 1,
     1e-12, True),

    ("outer_product", """
function A = f(u, v)
A = u * v;
end
""", [arg((4, 1)), arg((1, 5))],
     [RNG.standard_normal((4, 1)), RNG.standard_normal((1, 5))], 1,
     1e-12, False),

    ("gram_matrix", """
function G = f(A)
G = A' * A;
end
""", [arg((5, 3))], [RNG.standard_normal((5, 3))], 1, 1e-12, False),

    ("quantizer", """
function y = f(x, step)
y = step .* round(x ./ step);
end
""", [arg((1, 16)), arg()], [rrow(16), 0.25], 1, 1e-12, False),

    ("clipping", """
function y = f(x, lo, hi)
y = min(max(x, lo), hi);
end
""", [arg((1, 16)), arg(), arg()], [rrow(16), -0.5, 0.5], 1, 1e-12,
     True),

    ("cumulative_sum", """
function y = f(x)
n = length(x);
y = zeros(1, n);
acc = 0;
for k = 1:n
    acc = acc + x(k);
    y(k) = acc;
end
end
""", [arg((1, 20))], [rrow(20)], 1, 1e-12, False),

    ("even_odd_split", """
function [e, o] = f(x)
n = length(x) / 2;
e = zeros(1, n);
o = zeros(1, n);
for k = 1:n
    o(k) = x(2 * k - 1);
    e(k) = x(2 * k);
end
end
""", [arg((1, 16))], [rrow(16)], 2, 1e-12, False),

    ("linear_interp", """
function y = f(a, b, t)
y = a .* (1 - t) + b .* t;
end
""", [arg((1, 10)), arg((1, 10)), arg()], [rrow(10), rrow(10), 0.3], 1,
     1e-12, False),

    ("sinc_table", """
function y = f(n)
y = zeros(1, 16);
for k = 1:16
    t = (k - 8.5) * 0.4;
    y(k) = sin(n * t) / (n * t);
end
end
""", [arg(value=2.0)], [2.0], 1, 1e-12, False),

    ("goertzel_bin", """
function p = f(x, w)
s0 = 0;
s1 = 0;
s2 = 0;
c = 2 * cos(w);
for n = 1:length(x)
    s0 = x(n) + c * s1 - s2;
    s2 = s1;
    s1 = s0;
end
p = s1 * s1 + s2 * s2 - c * s1 * s2;
end
""", [arg((1, 32)), arg()], [rrow(32), 0.7], 1, 1e-9, True),

    ("complex_accumulate", """
function s = f(z)
s = 0;
for k = 1:length(z)
    if real(z(k)) > 0
        s = s + z(k);
    else
        s = s - conj(z(k));
    end
end
end
""", [arg((1, 18), complex=True)], [crow(18)], 1, 1e-12, False),

    ("switch_modes", """
function y = f(x, mode)
y = zeros(1, length(x));
for k = 1:length(x)
    switch mode
    case 1
        y(k) = x(k) * 2;
    case 2
        y(k) = x(k) ^ 2;
    otherwise
        y(k) = 0;
    end
end
end
""", [arg((1, 8)), arg()], [rrow(8), 2.0], 1, 1e-12, False),

    ("nested_helpers", """
function y = f(x)
y = square_all(shift(x, 1));
end
function y = shift(x, d)
y = x + d;
end
function y = square_all(x)
y = x .* x;
end
""", [arg((1, 9))], [rrow(9)], 1, 1e-12, True),

    ("window_and_pad", """
function y = f(x)
n = length(x);
y = zeros(1, 2 * n);
y(1:n) = x .* linspace(1, 0, n);
end
""", [arg((1, 12))], [rrow(12)], 1, 1e-12, False),

    ("hadamard_2x2", """
function y = f(x)
H = [1 1; 1 -1];
y = H * reshape(x, 2, 2);
end
""", [arg((1, 4))], [rrow(4)], 1, 1e-12, False),

    ("bit_manipulation", """
function y = f(n)
y = 0;
t = n;
while t > 0
    y = y + mod(t, 2);
    t = floor(t / 2);
end
end
""", [arg()], [173.0], 1, 1e-12, False),

    ("scalar_expansion_rows", """
function y = f(A, c)
y = A .* c + 1;
end
""", [arg((3, 5)), arg()], [RNG.standard_normal((3, 5)), 2.5], 1,
     1e-12, False),

    ("single_precision_chain", """
function y = f(x)
y = x .* 2 + x ./ 4;
end
""", [arg((1, 16), dtype="single")],
     [RNG.standard_normal((1, 16)).astype(np.float32)], 1, 2e-6, True),

    ("library_conv_then_slice", """
function y = f(x, h)
full = conv(x, h);
y = full(length(h):length(x));
end
""", [arg((1, 20)), arg((1, 4))], [rrow(20), rrow(4)], 1, 1e-12, False),

    ("fft_roundtrip", """
function y = f(x)
y = real(ifft(fft(x)));
end
""", [arg((1, 32))], [rrow(32)], 1, 1e-9, False),

    ("iir_library_filter", """
function y = f(b, a, x)
y = filter(b, a, x);
end
""", [arg((1, 3)), arg((1, 3)), arg((1, 40))],
     [np.array([[0.2, 0.4, 0.2]]), np.array([[1.0, -0.5, 0.2]]),
      rrow(40)], 1, 1e-9, False),
]


@pytest.mark.parametrize(
    "name,source,args,inputs,nargout,tol,with_gcc",
    CASES, ids=[case[0] for case in CASES])
def test_differential(name, source, args, inputs, nargout, tol, with_gcc):
    check_program(source, args, inputs, nargout=nargout, tol=tol,
                  with_gcc=with_gcc)


def test_argument_result_aliasing():
    """Regression: x = f(x) must snapshot the argument before the callee
    writes its (pointer-aliased) output buffer."""
    src = """
function x = top(x)
x = rev(x);
end
function y = rev(x)
n = length(x);
y = zeros(1, n);
for k = 1:n
    y(k) = x(n - k + 1);
end
end
"""
    x = np.arange(1.0, 7.0).reshape(1, -1)
    check_program(src, [arg((1, 6))], [x], entry="top", with_gcc=True)


def test_same_array_passed_twice():
    src = """
function y = top(x)
y = combine(x, x);
end
function y = combine(a, b)
y = a + b .* 2;
end
"""
    x = np.arange(1.0, 5.0).reshape(1, -1)
    check_program(src, [arg((1, 4))], [x], entry="top", with_gcc=True)
