"""Shared test helpers: differential execution of MATLAB programs.

The central helper, :func:`check_program`, runs one MATLAB program four
ways — golden interpreter, simulated baseline IR, simulated optimized
IR, and (optionally) gcc-compiled generated C — and asserts they agree.
Most correctness tests in this suite reduce to a call to it.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.ir.verifier import verify_module
from repro.mlab.interp import MatlabInterpreter
from repro.sim.machine import Simulator

HAVE_GCC = shutil.which("gcc") is not None

requires_gcc = pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")


def golden_outputs(source: str, entry: str, inputs: list, nargout: int = 1):
    interp = MatlabInterpreter(source)
    return interp.call(entry, list(inputs), nargout=nargout)


def compile_both(source: str, args, entry: str | None = None,
                 processor: str = "vliw_simd_dsp"):
    optimized = compile_source(source, args=args, entry=entry,
                               processor=processor)
    baseline = compile_source(source, args=args, entry=entry,
                              processor=processor,
                              options=CompilerOptions.baseline())
    verify_module(optimized.module)
    verify_module(baseline.module)
    return optimized, baseline


def assert_outputs_close(actual, expected, tol: float, context: str):
    actual = np.atleast_2d(np.asarray(actual))
    expected = np.atleast_2d(np.asarray(expected))
    assert actual.shape == expected.shape, \
        f"{context}: shape {actual.shape} != expected {expected.shape}"
    assert np.allclose(actual, expected, atol=tol, rtol=tol), \
        f"{context}: values differ (max abs err " \
        f"{np.max(np.abs(actual - expected)):.3e})\n" \
        f"actual={actual}\nexpected={expected}"


def check_program(source: str, args, inputs: list,
                  entry: str | None = None, nargout: int = 1,
                  tol: float = 1e-9, with_gcc: bool = False,
                  processor: str = "vliw_simd_dsp"):
    """Differential check; returns (optimized_result, optimized_outputs)."""
    optimized, baseline = compile_both(source, args, entry, processor)
    entry_name = entry or optimized.sprog.entry.func.name
    golden = golden_outputs(source, entry_name, inputs, nargout)

    run_opt = Simulator(optimized.module, optimized.processor) \
        .run(list(inputs))
    run_base = Simulator(baseline.module, baseline.processor) \
        .run(list(inputs))
    for index, expected in enumerate(golden):
        assert_outputs_close(run_opt.outputs[index], expected, tol,
                             f"optimized output #{index}")
        assert_outputs_close(run_base.outputs[index], expected, tol,
                             f"baseline output #{index}")
    if with_gcc and HAVE_GCC:
        from repro.backend.harness import run_via_gcc
        host = run_via_gcc(optimized, list(inputs))
        for index, expected in enumerate(golden):
            assert_outputs_close(host[index], expected, max(tol, 1e-7),
                                 f"gcc output #{index}")
    return optimized, run_opt.outputs
