"""Unit tests for the ANSI C backend and host-compilation harness."""

import subprocess

import numpy as np
import pytest

from repro.asip.header_gen import generate_header, vector_type_name
from repro.asip.isa_library import vliw_simd_dsp
from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir.types import ScalarKind

from helpers import HAVE_GCC, requires_gcc


def c_of(source, args, **kw):
    return compile_source(source, args=args, **kw).c_source()


# ----------------------------------------------------------------------
# Header generation
# ----------------------------------------------------------------------


def test_header_contains_all_intrinsics():
    processor = vliw_simd_dsp()
    header = generate_header(processor)
    for instr in processor.instructions:
        assert instr.intrinsic in header, instr.intrinsic


def test_header_vector_typedefs():
    header = generate_header(vliw_simd_dsp())
    assert "typedef struct { float v[8]; } asip_v8f32;" in header
    assert "typedef struct { double v[4]; } asip_v4f64;" in header
    assert "asip_v2c128" in header


def test_header_complex_helpers():
    header = generate_header(vliw_simd_dsp())
    for helper in ("asip_c128_mul", "asip_c128_div", "asip_c64_conj",
                   "asip_round", "asip_mod"):
        assert helper in header


def test_vector_type_name():
    assert vector_type_name(ScalarKind.F32, 8) == "asip_v8f32"
    assert vector_type_name(ScalarKind.C128, 2) == "asip_v2c128"


# ----------------------------------------------------------------------
# Emitted C structure
# ----------------------------------------------------------------------


def test_entry_signature_shape():
    text = c_of("function [s, y] = f(x)\ns = sum(x);\ny = x .* 2;\nend",
                [arg((1, 6))])
    assert "void f_double_1x6(const double *x, double *y, " \
           "double *out_s)" in text or \
           "void f_double_1x6(const double *x, " in text
    assert "*out_s = s;" in text


def test_static_helpers_entry_public():
    # Inlining is pinned off so the callee survives as a function.
    text = c_of("function y = f(x)\ny = conv(x, x);\nend", [arg((1, 4))],
                options=CompilerOptions(inline=False))
    assert "static void conv_" in text
    assert "\nvoid f_double_1x4(" in text


def test_single_site_library_call_is_inlined():
    text = c_of("function y = f(x)\ny = conv(x, x);\nend", [arg((1, 4))])
    assert "static void conv_" not in text  # merged into the caller


def test_intrinsic_calls_in_output():
    text = c_of("""
function s = f(a, b)
s = 0;
for k = 1:32
    s = s + a(k) * b(k);
end
end
""", [arg((1, 32)), arg((1, 32))])
    assert "asip_vmac_f64x4(" in text
    assert "asip_vredadd_f64x4(" in text


def test_complex_arrays_use_struct_type():
    text = c_of("function y = f(z)\ny = z .* z;\nend",
                [arg((1, 4), complex=True)])
    assert "const asip_c128 *z" in text


def test_loop_syntax():
    text = c_of("""
function y = f(x)
y = zeros(1, 9);
for k = 1:9
    y(k) = x(k);
end
end
""", [arg((1, 9))], options=CompilerOptions(simd=False))
    assert "for (k = 1; k < 10; ++k)" in text


def test_float_literals_have_decimal_points():
    text = c_of("function y = f(x)\ny = x + 3;\nend", [arg()])
    assert "3.0" in text


def test_memset_initialization_of_locals():
    text = c_of("function y = f(x)\nt = x .* 2;\ny = t + 1;\nend",
                [arg((1, 4))], options=CompilerOptions.baseline())
    assert "memset(" in text


def test_printf_for_fprintf():
    text = c_of("function f(x)\nfprintf('x=%g\\n', x);\nend", [arg()])
    assert 'printf("x=%g\\n", ' in text


def test_single_precision_types_and_suffix():
    text = c_of("function y = f(x)\ny = x .* 0.5;\nend",
                [arg((1, 4), dtype="single")])
    assert "const float *x" in text
    assert "0.5f" in text


# ----------------------------------------------------------------------
# Host compilation round trips
# ----------------------------------------------------------------------


@requires_gcc
def test_gcc_strict_ansi_accepts_output():
    from repro.backend.harness import run_via_gcc
    result = compile_source("""
function y = f(x, h)
y = conv(x, h);
end
""", args=[arg((1, 16)), arg((1, 4))])
    rng = np.random.default_rng(0)
    x, h = rng.standard_normal((1, 16)), rng.standard_normal((1, 4))
    outputs = run_via_gcc(result, [x, h])
    expected = np.convolve(x.ravel(), h.ravel()).reshape(1, -1)
    assert np.allclose(outputs[0], expected)


@requires_gcc
def test_gcc_complex_roundtrip():
    from repro.backend.harness import run_via_gcc
    result = compile_source("""
function [s, y] = f(a, b)
s = 0;
y = complex(zeros(1, 8), zeros(1, 8));
for k = 1:8
    y(k) = conj(a(k)) * b(k);
    s = s + y(k);
end
end
""", args=[arg((1, 8), complex=True), arg((1, 8), complex=True)])
    rng = np.random.default_rng(1)
    a = rng.standard_normal((1, 8)) + 1j * rng.standard_normal((1, 8))
    b = rng.standard_normal((1, 8)) + 1j * rng.standard_normal((1, 8))
    outputs = run_via_gcc(result, [a, b])
    expected = np.conj(a) * b
    assert np.allclose(outputs[1], expected)
    assert abs(outputs[0] - expected.sum()) < 1e-9


@requires_gcc
def test_gcc_scalar_and_io():
    from repro.backend.harness import generate_main
    from repro.backend.emitter import emit_c
    import tempfile
    from pathlib import Path
    result = compile_source("""
function y = f(x)
fprintf('working on %g\\n', x);
y = x * 2;
end
""", args=[arg()])
    main = generate_main(result.module, [21.0])
    source = emit_c(result.module, result.processor, with_main=True,
                    main_body=main)
    with tempfile.TemporaryDirectory() as tmp:
        c_file = Path(tmp) / "t.c"
        exe = Path(tmp) / "t"
        c_file.write_text(source)
        subprocess.run(["gcc", "-std=c89", "-pedantic", str(c_file),
                        "-o", str(exe), "-lm"], check=True)
        out = subprocess.run([str(exe)], capture_output=True, text=True)
    assert "working on 21" in out.stdout
    assert "42" in out.stdout


@requires_gcc
def test_gcc_wall_produces_no_errors():
    from repro.backend.harness import run_via_gcc
    result = compile_source(
        "function y = f(x)\ny = x + 1;\nend", args=[arg((1, 4))])
    outputs = run_via_gcc(result, [np.zeros((1, 4))],
                          flags=["-std=c89", "-Wall", "-O2", "-lm"])
    assert np.allclose(outputs[0], np.ones((1, 4)))


@requires_gcc
def test_gcc_reserved_identifier_program():
    from repro.backend.harness import run_via_gcc
    result = compile_source(
        "function y = f(register, int)\ny = register + int;\nend",
        args=[arg(), arg()])
    outputs = run_via_gcc(result, [1.0, 2.0])
    assert outputs[0] == 3.0


def test_compile_failure_reported():
    from repro.backend.harness import run_via_gcc
    from repro.errors import BackendError
    result = compile_source("function y = f(x)\ny = x;\nend", args=[arg()])
    if not HAVE_GCC:
        pytest.skip("gcc not available")
    with pytest.raises(BackendError, match="compilation failed"):
        run_via_gcc(result, [1.0], cc="gcc",
                    flags=["-std=c89", "-DSYNTAX_ERROR_FLAG(", "-lm"])
