"""Unit tests for SIMD vectorization and instruction selection."""

import numpy as np

from repro.asip.isa_library import (
    generic_scalar_dsp,
    simd_dsp_with_width,
    vliw_simd_dsp,
    wide_simd_dsp,
)
from repro.compiler import CompilerOptions, arg, compile_source
from repro.ir.verifier import verify_module
from repro.mlab.interp import MatlabInterpreter


def compiled(source, args, processor="vliw_simd_dsp", **kw):
    result = compile_source(source, args=args, processor=processor, **kw)
    verify_module(result.module)
    return result


def instructions_used(result, inputs) -> set:
    return set(result.simulate(list(inputs)).report.instruction_counts)


def assert_matches_golden(result, source, entry, inputs, tol=1e-9):
    golden = MatlabInterpreter(source).call(entry, list(inputs))
    run = result.simulate(list(inputs))
    assert np.allclose(np.asarray(run.outputs[0]),
                       np.asarray(golden[0]), atol=tol, rtol=tol)
    return run


SAXPY = """
function y = saxpy(a, x, b)
y = zeros(1, length(x));
for k = 1:length(x)
    y(k) = a * x(k) + b(k);
end
end
"""


def test_elementwise_loop_vectorizes():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 64)), arg((1, 64))])
    rng = np.random.default_rng(0)
    x, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    used = instructions_used(result, [2.0, x, b])
    assert "vload_f64x4" in used
    assert "vstore_f64x4" in used
    assert_matches_golden(result, SAXPY, "saxpy", [2.0, x, b])


def test_tail_loop_handles_remainder():
    # 67 = 16*4 + 3: the tail must process 3 scalar iterations.
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 67)), arg((1, 67))])
    rng = np.random.default_rng(1)
    x, b = rng.standard_normal((1, 67)), rng.standard_normal((1, 67))
    run = assert_matches_golden(result, SAXPY, "saxpy", [2.0, x, b])
    counts = run.report.instruction_counts
    # 16 vector chunks in the compute loop (the zeros-fill loop adds
    # its own stores, so count the multiplies).
    assert counts["vmul_f64x4"] == 16


def test_exact_multiple_has_no_tail_work():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 64)), arg((1, 64))])
    rng = np.random.default_rng(2)
    x, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    run = assert_matches_golden(result, SAXPY, "saxpy", [2.0, x, b])
    assert run.report.instruction_counts["vmul_f64x4"] == 16


DOT = """
function s = dotk(a, b)
s = 0;
for k = 1:length(a)
    s = s + a(k) * b(k);
end
end
"""


def test_reduction_uses_vmac_and_vredadd():
    result = compiled(DOT, [arg((1, 64)), arg((1, 64))])
    rng = np.random.default_rng(3)
    a, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    used = instructions_used(result, [a, b])
    assert "vmac_f64x4" in used
    assert "vredadd_f64x4" in used
    assert_matches_golden(result, DOT, "dotk", [a, b], tol=1e-9)


def test_reduction_without_vmac_uses_vadd():
    SUM = """
function s = total(a)
s = 0;
for k = 1:length(a)
    s = s + a(k);
end
end
"""
    result = compiled(SUM, [arg((1, 32))])
    a = np.arange(32.0).reshape(1, -1)
    used = instructions_used(result, [a])
    assert "vadd_f64x4" in used
    assert_matches_golden(result, SUM, "total", [a])


def test_reversed_access_uses_vloadr():
    REV = """
function y = rev(x)
n = length(x);
y = zeros(1, n);
for k = 1:n
    y(k) = x(n - k + 1);
end
end
"""
    result = compiled(REV, [arg((1, 32))])
    x = np.arange(32.0).reshape(1, -1)
    used = instructions_used(result, [x])
    assert "vloadr_f64x4" in used
    assert_matches_golden(result, REV, "rev", [x])


def test_invariant_scalar_is_splatted():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 32)), arg((1, 32))])
    rng = np.random.default_rng(4)
    x, b = rng.standard_normal((1, 32)), rng.standard_normal((1, 32))
    used = instructions_used(result, [3.0, x, b])
    assert "vsplat_f64x4" in used


def test_single_precision_picks_eight_lanes():
    result = compiled(SAXPY, [arg((1, 1), dtype="single"),
                              arg((1, 64), dtype="single"),
                              arg((1, 64), dtype="single")])
    rng = np.random.default_rng(5)
    x = rng.standard_normal((1, 64)).astype(np.float32)
    b = rng.standard_normal((1, 64)).astype(np.float32)
    used = instructions_used(result, [2.0, x, b])
    assert "vstore_f32x8" in used


def test_width_fallback_for_short_trip_counts():
    # 12 iterations on a target with 8- and 4-lane f64: 4 lanes win
    # (three full chunks, no tail).
    processor = simd_dsp_with_width(8)
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 12)), arg((1, 12))],
                      processor=processor)
    rng = np.random.default_rng(6)
    x, b = rng.standard_normal((1, 12)), rng.standard_normal((1, 12))
    used = instructions_used(result, [2.0, x, b])
    assert "vstore_f64x4" in used


def test_no_vectorization_on_scalar_target():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 64)), arg((1, 64))],
                      processor=generic_scalar_dsp())
    rng = np.random.default_rng(7)
    x, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    used = instructions_used(result, [2.0, x, b])
    assert not any(name.startswith("vload") for name in used)
    assert_matches_golden(result, SAXPY, "saxpy", [2.0, x, b])


def test_loop_with_branch_stays_scalar():
    COND = """
function y = clip0(x)
y = zeros(1, length(x));
for k = 1:length(x)
    if x(k) > 0
        y(k) = x(k);
    end
end
end
"""
    result = compiled(COND, [arg((1, 32))])
    x = np.linspace(-1, 1, 32).reshape(1, -1)
    used = instructions_used(result, [x])
    assert not any("vmac" in n or "vmul" in n for n in used)
    assert_matches_golden(result, COND, "clip0", [x])


def test_strided_access_stays_scalar():
    STRIDED = """
function y = pick(x)
y = zeros(1, 16);
for k = 1:16
    y(k) = x(2 * k);
end
end
"""
    result = compiled(STRIDED, [arg((1, 32))])
    x = np.arange(32.0).reshape(1, -1)
    used = instructions_used(result, [x])
    assert not any(name.startswith("vload") for name in used)
    assert_matches_golden(result, STRIDED, "pick", [x])


def test_live_out_loop_variable_blocks_vectorization():
    LIVE = """
function [y, last] = f(x)
y = zeros(1, 16);
for k = 1:16
    y(k) = x(k) * 2;
end
last = k;
end
"""
    result = compiled(LIVE, [arg((1, 16))])
    x = np.arange(16.0).reshape(1, -1)
    run = result.simulate([x])
    # Correctness of the live-out value matters more than vectorizing.
    assert run.outputs[1] == 16.0
    # The compute loop must stay scalar (only the zeros fill may have
    # been vectorized, and it has no multiplies).
    assert not any("vmul" in name or "vmac" in name
                   for name in run.report.instruction_counts)


def test_mixed_element_kinds_stay_scalar():
    MIXED = """
function y = f(x, z)
y = zeros(1, 16);
for k = 1:16
    y(k) = x(k) + real(z(k));
end
end
"""
    result = compiled(MIXED, [arg((1, 16)), arg((1, 16), complex=True)])
    rng = np.random.default_rng(8)
    x = rng.standard_normal((1, 16))
    z = rng.standard_normal((1, 16)) + 1j * rng.standard_normal((1, 16))
    used = instructions_used(result, [x, z])
    assert not any("vadd" in name or "vmul" in name for name in used)


def test_complex_simd_on_capable_target():
    CMUL = """
function y = cscale(x, w)
y = complex(zeros(1, length(x)), zeros(1, length(x)));
for k = 1:length(x)
    y(k) = x(k) * w(k);
end
end
"""
    result = compiled(CMUL, [arg((1, 32), complex=True),
                             arg((1, 32), complex=True)])
    rng = np.random.default_rng(9)
    x = rng.standard_normal((1, 32)) + 1j * rng.standard_normal((1, 32))
    w = rng.standard_normal((1, 32)) + 1j * rng.standard_normal((1, 32))
    used = instructions_used(result, [x, w])
    assert "vmul_c128x2" in used
    assert_matches_golden(result, CMUL, "cscale", [x, w])


def test_conj_vectorizes_with_vconj():
    CC = """
function s = cdotk(a, b)
s = 0;
for k = 1:length(a)
    s = s + conj(a(k)) * b(k);
end
end
"""
    result = compiled(CC, [arg((1, 32), complex=True),
                           arg((1, 32), complex=True)])
    rng = np.random.default_rng(10)
    a = rng.standard_normal((1, 32)) + 1j * rng.standard_normal((1, 32))
    b = rng.standard_normal((1, 32)) + 1j * rng.standard_normal((1, 32))
    used = instructions_used(result, [a, b])
    assert "vconj_c128x2" in used
    assert "vmac_c128x2" in used
    assert_matches_golden(result, CC, "cdotk", [a, b], tol=1e-8)


def test_wider_target_uses_wider_lanes():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 64)), arg((1, 64))],
                      processor=wide_simd_dsp())
    rng = np.random.default_rng(11)
    x, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    used = instructions_used(result, [2.0, x, b])
    assert "vstore_f64x8" in used


def test_simd_disabled_by_option():
    result = compiled(SAXPY, [arg((1, 1)), arg((1, 64)), arg((1, 64))],
                      options=CompilerOptions(simd=False))
    rng = np.random.default_rng(12)
    x, b = rng.standard_normal((1, 64)), rng.standard_normal((1, 64))
    used = instructions_used(result, [2.0, x, b])
    assert not any(name.startswith("vstore") for name in used)


def test_runtime_trip_count_strip_mined():
    RUNTIME = """
function s = headsum(x, m)
s = 0;
kmax = min(m, length(x));
for k = 1:kmax
    s = s + x(k);
end
end
"""
    result = compiled(RUNTIME, [arg((1, 64)), arg((1, 1))])
    x = np.arange(64.0).reshape(1, -1)
    for m in (1.0, 3.0, 4.0, 17.0, 64.0):
        golden = MatlabInterpreter(RUNTIME).call("headsum", [x, m])[0]
        run = result.simulate([x, m])
        assert np.allclose(run.outputs[0], np.asarray(golden))
    used = instructions_used(result, [x, 64.0])
    assert "vadd_f64x4" in used


def test_vectorized_modules_verify():
    for source, args in [
        (SAXPY, [arg((1, 1)), arg((1, 40)), arg((1, 40))]),
        (DOT, [arg((1, 40)), arg((1, 40))]),
    ]:
        result = compiled(source, args)
        verify_module(result.module)
