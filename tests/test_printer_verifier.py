"""Unit tests for the IR printer and the verifier's error detection."""

import pytest

from repro.compiler import arg, compile_source
from repro.ir import nodes as ir
from repro.ir.printer import format_expr, format_module
from repro.ir.types import ArrayType, I32, ScalarKind, ScalarType
from repro.ir.verifier import VerificationError, verify_function

F64 = ScalarType(ScalarKind.F64)
BOOL = ScalarType(ScalarKind.BOOL)


# ----------------------------------------------------------------------
# Printer
# ----------------------------------------------------------------------


def test_format_expr_shapes():
    expr = ir.BinOp(F64, op="add",
                    left=ir.Load(F64, array="x", index=ir.VarRef(I32, "i")),
                    right=ir.Const(F64, 1.5))
    assert format_expr(expr) == "(x[i] add 1.5)"


def test_format_cast_and_math():
    expr = ir.Cast(I32, operand=ir.MathCall(F64, name="floor",
                                            args=[ir.VarRef(F64, "v")]))
    assert format_expr(expr) == "cast<i32>(floor(v))"


def test_format_function_full_pipeline():
    result = compile_source("""
function y = f(x)
y = zeros(1, 8);
for k = 1:8
    if x(k) > 0
        y(k) = x(k);
    else
        y(k) = -x(k);
    end
end
end
""", args=[arg((1, 8))])
    text = format_module(result.module)
    assert "func f_double_1x8" in text
    assert "if " in text and "else:" in text
    assert "for k = " in text


def test_printer_handles_every_generated_construct():
    # A program hitting loops, calls, emits, copies, intrinsics.
    from repro.compiler import CompilerOptions
    result = compile_source("""
function y = f(x)
t = conv(x, x);
fprintf('n=%d\\n', length(t));
y = reshape(t(1:4), 2, 2);
end
""", args=[arg((1, 4))], options=CompilerOptions(inline=False))
    text = format_module(result.module)
    assert "call conv_" in text
    assert "emit" in text
    assert "[:] =" in text  # reshape copy


# ----------------------------------------------------------------------
# Verifier
# ----------------------------------------------------------------------


def make_func(body, locals_=None, params=(), outputs=()):
    return ir.IRFunction(name="t", params=list(params),
                         outputs=list(outputs),
                         locals=dict(locals_ or {}), body=body)


def test_verifier_accepts_valid_function():
    func = make_func(
        [ir.AssignVar("v", ir.Const(F64, 1.0))],
        locals_={"v": F64})
    verify_function(func)


def test_undeclared_variable_reference():
    func = make_func([ir.AssignVar("v", ir.VarRef(F64, "ghost"))],
                     locals_={"v": F64})
    with pytest.raises(VerificationError, match="undeclared"):
        verify_function(func)


def test_assignment_type_mismatch():
    func = make_func([ir.AssignVar("v", ir.Const(I32, 1))],
                     locals_={"v": F64})
    with pytest.raises(VerificationError, match="type mismatch"):
        verify_function(func)


def test_store_to_unknown_array():
    func = make_func([ir.Store(array="ghost", index=ir.Const(I32, 0),
                               value=ir.Const(F64, 0.0))])
    with pytest.raises(VerificationError, match="unknown array"):
        verify_function(func)


def test_store_element_type_mismatch():
    func = make_func(
        [ir.Store(array="a", index=ir.Const(I32, 0),
                  value=ir.Const(I32, 1))],
        locals_={"a": ArrayType(F64, 1, 4)})
    with pytest.raises(VerificationError, match="element type"):
        verify_function(func)


def test_non_i32_index_rejected():
    func = make_func(
        [ir.Store(array="a", index=ir.Const(F64, 0.0),
                  value=ir.Const(F64, 1.0))],
        locals_={"a": ArrayType(F64, 1, 4)})
    with pytest.raises(VerificationError, match="i32"):
        verify_function(func)


def test_loop_over_undeclared_variable():
    loop = ir.ForRange(var="k", start=ir.Const(I32, 0),
                       stop=ir.Const(I32, 4), step=1, body=[])
    with pytest.raises(VerificationError, match="loop variable"):
        verify_function(make_func([loop]))


def test_zero_step_rejected():
    loop = ir.ForRange(var="k", start=ir.Const(I32, 0),
                       stop=ir.Const(I32, 4), step=0, body=[])
    with pytest.raises(VerificationError, match="non-zero"):
        verify_function(make_func([loop], locals_={"k": I32}))


def test_break_outside_loop_rejected():
    with pytest.raises(VerificationError, match="Break"):
        verify_function(make_func([ir.Break()]))


def test_break_inside_loop_ok():
    loop = ir.ForRange(var="k", start=ir.Const(I32, 0),
                       stop=ir.Const(I32, 4), step=1, body=[ir.Break()])
    verify_function(make_func([loop], locals_={"k": I32}))


def test_stale_varref_type_detected():
    func = make_func([ir.AssignVar("v", ir.VarRef(I32, "w"))],
                     locals_={"v": I32, "w": F64})
    with pytest.raises(VerificationError, match="stale type"):
        verify_function(func)


def test_copyarray_size_mismatch():
    func = make_func(
        [ir.CopyArray(dst="a", src="b")],
        locals_={"a": ArrayType(F64, 1, 4), "b": ArrayType(F64, 1, 8)})
    with pytest.raises(VerificationError, match="element-count"):
        verify_function(func)


def test_intrinsic_without_instruction_rejected():
    call = ir.IntrinsicCall(F64, instruction=None, args=[])
    func = make_func([ir.AssignVar("v", call)], locals_={"v": F64})
    with pytest.raises(VerificationError, match="instruction"):
        verify_function(func)
