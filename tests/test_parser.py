"""Unit tests for the MATLAB parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse, parse_expression


# ----------------------------------------------------------------------
# Expressions and precedence
# ----------------------------------------------------------------------


def test_additive_multiplicative_precedence():
    expr = parse_expression("a + b * c")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"


def test_left_associativity():
    expr = parse_expression("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "-"


def test_unary_minus_binds_below_power():
    # MATLAB: -a^b == -(a^b)
    expr = parse_expression("-a^b")
    assert isinstance(expr, ast.UnaryOp) and expr.op == "-"
    assert isinstance(expr.operand, ast.BinaryOp) and expr.operand.op == "^"


def test_power_accepts_signed_exponent():
    expr = parse_expression("2^-3")
    assert expr.op == "^"
    assert isinstance(expr.right, ast.UnaryOp) and expr.right.op == "-"


def test_power_left_to_right():
    # MATLAB evaluates 2^3^2 as (2^3)^2.
    expr = parse_expression("2^3^2")
    assert expr.op == "^"
    assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "^"


def test_comparison_below_range():
    expr = parse_expression("1:3 == 2")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "=="
    assert isinstance(expr.left, ast.Range)


def test_short_circuit_precedence():
    expr = parse_expression("a || b && c")
    assert expr.op == "||"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "&&"


def test_elementwise_operators():
    for op in (".*", "./", ".\\", ".^"):
        expr = parse_expression(f"a {op} b")
        assert isinstance(expr, ast.BinaryOp) and expr.op == op


def test_logical_not():
    expr = parse_expression("~a")
    assert isinstance(expr, ast.UnaryOp) and expr.op == "~"


def test_transpose_postfix():
    expr = parse_expression("a'")
    assert isinstance(expr, ast.Transpose) and expr.conjugate


def test_dot_transpose():
    expr = parse_expression("a.'")
    assert isinstance(expr, ast.Transpose) and not expr.conjugate


def test_transpose_of_negation():
    # -a' is -(a')
    expr = parse_expression("-a'")
    assert isinstance(expr, ast.UnaryOp)
    assert isinstance(expr.operand, ast.Transpose)


def test_transpose_after_index():
    expr = parse_expression("x(1)'")
    assert isinstance(expr, ast.Transpose)
    assert isinstance(expr.operand, ast.CallIndex)


def test_range_two_part():
    expr = parse_expression("1:10")
    assert isinstance(expr, ast.Range) and expr.step is None


def test_range_three_part():
    expr = parse_expression("1:2:10")
    assert isinstance(expr, ast.Range)
    assert isinstance(expr.step, ast.NumberLit) and expr.step.value == 2


def test_range_with_expressions():
    expr = parse_expression("a+1:b*2")
    assert isinstance(expr, ast.Range)
    assert isinstance(expr.start, ast.BinaryOp)


def test_parenthesized_expression():
    expr = parse_expression("(a + b) * c")
    assert expr.op == "*"
    assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"


def test_call_with_arguments():
    expr = parse_expression("f(x, y + 1)")
    assert isinstance(expr, ast.CallIndex)
    assert len(expr.args) == 2


def test_nested_calls():
    expr = parse_expression("f(g(h(x)))")
    inner = expr.args[0].args[0]
    assert isinstance(inner, ast.CallIndex)
    assert inner.target.name == "h"


def test_colon_subscript():
    expr = parse_expression("a(:, 2)")
    assert isinstance(expr.args[0], ast.ColonAll)


def test_end_in_subscript():
    expr = parse_expression("a(end)")
    assert isinstance(expr.args[0], ast.EndMarker)


def test_end_arithmetic():
    expr = parse_expression("a(end - 1)")
    arg = expr.args[0]
    assert isinstance(arg, ast.BinaryOp)
    assert isinstance(arg.left, ast.EndMarker)


def test_end_outside_index_rejected():
    with pytest.raises(ParseError, match="end"):
        parse_expression("end + 1")


def test_imaginary_literal_expression():
    expr = parse_expression("2 + 3i")
    assert isinstance(expr.right, ast.ImagLit)
    assert expr.right.value == 3.0


def test_function_handle():
    expr = parse_expression("@sin")
    assert isinstance(expr, ast.FuncHandle) and expr.name == "sin"


def test_anonymous_function():
    expr = parse_expression("@(x, y) x + y")
    assert isinstance(expr, ast.AnonFunc)
    assert expr.params == ["x", "y"]
    assert isinstance(expr.body, ast.BinaryOp)


# ----------------------------------------------------------------------
# Matrix literals
# ----------------------------------------------------------------------


def test_matrix_rows_and_columns():
    expr = parse_expression("[1 2; 3 4]")
    assert len(expr.rows) == 2
    assert len(expr.rows[0]) == 2


def test_matrix_comma_separators():
    expr = parse_expression("[1, 2, 3]")
    assert len(expr.rows[0]) == 3


def test_empty_matrix():
    expr = parse_expression("[]")
    assert expr.rows == []


def test_juxtaposed_negative_is_new_element():
    expr = parse_expression("[1 -2]")
    assert len(expr.rows[0]) == 2
    assert isinstance(expr.rows[0][1], ast.UnaryOp)


def test_spaced_minus_is_binary():
    expr = parse_expression("[1 - 2]")
    assert len(expr.rows[0]) == 1
    assert isinstance(expr.rows[0][0], ast.BinaryOp)


def test_tight_minus_is_binary():
    expr = parse_expression("[1-2]")
    assert len(expr.rows[0]) == 1


def test_matrix_with_expressions():
    expr = parse_expression("[a+b c*d]")
    assert len(expr.rows[0]) == 2


def test_matrix_newline_rows():
    program = parse("m = [1 2\n3 4];")
    matrix = program.script[0].value
    assert len(matrix.rows) == 2


def test_nested_matrix_concat():
    expr = parse_expression("[[1 2] [3 4]]")
    assert len(expr.rows[0]) == 2
    assert all(isinstance(e, ast.MatrixLit) for e in expr.rows[0])


def test_matrix_call_element_no_space():
    expr = parse_expression("[f(1) 2]")
    assert isinstance(expr.rows[0][0], ast.CallIndex)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


def script(source: str):
    return parse(source).script


def test_assignment_suppressed_and_displayed():
    stmts = script("a = 1;\nb = 2\n")
    assert stmts[0].suppressed is True
    assert stmts[1].suppressed is False


def test_indexed_assignment():
    stmt = script("a(3) = 5;")[0]
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.target, ast.CallIndex)


def test_multi_assignment():
    stmt = script("[q, r] = f(x);")[0]
    assert isinstance(stmt, ast.MultiAssign)
    assert len(stmt.targets) == 2


def test_multi_assignment_with_ignore():
    stmt = script("[~, idx] = max(v);")[0]
    assert stmt.targets[0].name == "~"


def test_matrix_literal_statement_not_multiassign():
    stmt = script("[1 2; 3 4];")[0]
    assert isinstance(stmt, ast.ExprStmt)
    assert isinstance(stmt.expr, ast.MatrixLit)


def test_if_elseif_else():
    stmt = script("if a\nx=1;\nelseif b\nx=2;\nelse\nx=3;\nend")[0]
    assert isinstance(stmt, ast.If)
    assert len(stmt.branches) == 2
    assert len(stmt.else_body) == 1


def test_for_loop():
    stmt = script("for i = 1:10\nx = i;\nend")[0]
    assert isinstance(stmt, ast.For)
    assert stmt.var == "i"
    assert isinstance(stmt.iterable, ast.Range)


def test_for_loop_with_parentheses():
    stmt = script("for (i = 1:10)\nx = i;\nend")[0]
    assert isinstance(stmt, ast.For)


def test_while_loop():
    stmt = script("while x > 0\nx = x - 1;\nend")[0]
    assert isinstance(stmt, ast.While)


def test_switch_statement():
    stmt = script(
        "switch k\ncase 1\nv=1;\ncase 2\nv=2;\notherwise\nv=0;\nend")[0]
    assert isinstance(stmt, ast.Switch)
    assert len(stmt.cases) == 2
    assert len(stmt.otherwise) == 1


def test_break_continue_return():
    stmts = script("break\ncontinue\nreturn")
    assert isinstance(stmts[0], ast.Break)
    assert isinstance(stmts[1], ast.Continue)
    assert isinstance(stmts[2], ast.Return)


def test_comma_separated_statements():
    stmts = script("a = 1, b = 2;")
    assert len(stmts) == 2
    assert stmts[0].suppressed is False


# ----------------------------------------------------------------------
# Functions
# ----------------------------------------------------------------------


def test_function_single_output():
    program = parse("function y = f(x)\ny = x;\nend")
    func = program.functions[0]
    assert func.name == "f"
    assert func.params == ["x"]
    assert func.returns == ["y"]


def test_function_multiple_outputs():
    program = parse("function [a, b] = f(x, y)\na = x; b = y;\nend")
    func = program.functions[0]
    assert func.returns == ["a", "b"]


def test_function_no_outputs():
    program = parse("function show(x)\ndisp(x);\nend")
    assert program.functions[0].returns == []


def test_function_no_parameters():
    program = parse("function y = f()\ny = 1;\nend")
    assert program.functions[0].params == []


def test_function_unused_input_placeholder():
    program = parse("function y = f(~, x)\ny = x;\nend")
    assert program.functions[0].params == ["~", "x"]


def test_multiple_functions_without_end():
    program = parse("function y = f(x)\ny = g(x);\n"
                    "function y = g(x)\ny = x + 1;")
    assert [f.name for f in program.functions] == ["f", "g"]


def test_multiple_functions_with_end():
    program = parse("function y = f(x)\ny = x;\nend\n"
                    "function z = g(w)\nz = w;\nend")
    assert len(program.functions) == 2


def test_script_program():
    program = parse("a = 1;\nb = a + 2;")
    assert program.is_script
    assert len(program.script) == 2


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


def test_cell_array_rejected():
    with pytest.raises(ParseError, match="cell arrays"):
        parse("c = {1, 2};")


def test_struct_field_rejected():
    with pytest.raises(ParseError, match="struct"):
        parse("v = s.field;")


def test_missing_end_rejected():
    with pytest.raises(ParseError, match="end"):
        parse("if a\nx = 1;")


def test_invalid_assignment_target():
    with pytest.raises(ParseError, match="assignment"):
        parse("1 = x;")


def test_unterminated_matrix():
    with pytest.raises(ParseError):
        parse("a = [1 2; 3")


def test_unbalanced_parens():
    with pytest.raises(ParseError):
        parse_expression("(a + b")


def test_stray_operator():
    with pytest.raises(ParseError):
        parse_expression("* a")


def test_error_message_has_location():
    with pytest.raises(ParseError, match=r"<string>:2:\d+"):
        parse("a = 1;\nb = {};")


def test_walk_visits_all_nodes():
    program = parse("function y = f(x)\nif x > 0\ny = x;\nelse\ny = -x;"
                    "\nend\nend")
    names = [n.name for n in ast.walk(program)
             if isinstance(n, ast.Identifier)]
    assert names.count("x") >= 3
