"""Determinism tier for the design-space-exploration engine.

The contract under test (ISSUE PR 9): a search is **seed-deterministic
and merge-exact** — the same corpus, space, seed and budget produce a
byte-identical Pareto-front document at any worker count — and a
candidate whose evaluation crashes a worker burns only its own retry
budget, leaving the front over the survivors unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.dse import (DEFAULT_SPACE, DesignPoint, DesignSpace,
                       DesignSpaceSearch, KernelSpec, dominates,
                       hardware_cost, load_corpus, load_space,
                       pareto_front)
from repro.errors import IsaError, ReproError, SpaceError

pytestmark = pytest.mark.timeout(180)

FIR3 = """function y = fir3(x, h)
y = zeros(size(x));
for n = 3:length(x)
  y(n) = h(1)*x(n) + h(2)*x(n-1) + h(3)*x(n-2);
end
end
"""

SCALE = """function y = scale(x, g)
y = g * x;
end
"""

CORPUS = [
    KernelSpec(name="fir3", source=FIR3,
               args=("double:1x32", "double:1x3"), entry="fir3"),
    KernelSpec(name="scale", source=SCALE,
               args=("double:1x16", "double"), entry="scale"),
]

SPACE = DesignSpace({
    "name": "test",
    "simd_f32_lanes": [1, 4],
    "scalar_mac": [True, False],
}, source="<test-space>")


def _search(**overrides) -> DesignSpaceSearch:
    fields = dict(corpus=CORPUS, space=SPACE, jobs=1, seed=7)
    fields.update(overrides)
    return DesignSpaceSearch(fields.pop("corpus"), fields.pop("space"),
                             **fields)


# ---------------------------------------------------------------------
# Seed determinism / merge exactness
# ---------------------------------------------------------------------

def test_front_byte_identical_across_worker_counts(tmp_path):
    serial = _search(jobs=1, cache_dir=str(tmp_path / "c1")).run()
    fanned = _search(jobs=4, cache_dir=str(tmp_path / "c4")).run()
    assert serial.to_json() == fanned.to_json()
    assert serial.front, "the test space must produce a front"


def test_document_is_valid_deterministic_json(tmp_path):
    result = _search(cache_dir=str(tmp_path)).run()
    doc = json.loads(result.to_json())
    assert doc["schema"] == "repro-dse-front-v1"
    assert doc["seed"] == 7
    assert doc["corpus"] == ["fir3", "scale"]
    assert doc["evaluated"] == len(SPACE)
    assert doc["reference"]["cycles"].keys() == {"fir3", "scale"}
    # Nothing run-dependent may leak into the document.
    text = result.to_json()
    for banned in ("wall", "attempts", "pid", "workers"):
        assert banned not in text
    front_ids = [entry["id"] for entry in doc["front"]]
    assert len(front_ids) == len(set(front_ids))
    # Canonical front order: cheapest first.
    costs = [entry["cost"] for entry in doc["front"]]
    assert costs == sorted(costs)


def test_same_seed_same_front_budget_sampled(tmp_path):
    one = _search(budget=3, seed=5, cache_dir=str(tmp_path)).run()
    two = _search(budget=3, seed=5, cache_dir=str(tmp_path)).run()
    assert one.to_json() == two.to_json()
    assert len(one.candidates) == 3


def test_mac_and_simd_actually_help(tmp_path):
    """The search must measure real ISA effects, not noise: the
    MAC-equipped point beats the bare scalar on the FIR kernel, and
    the SIMD point beats scalar on the element-wise kernel."""
    result = _search(cache_dir=str(tmp_path)).run()
    by_id = {c.point_id: c for c in result.candidates}
    scalar = by_id["w1-cx0-mac0-clip0-mc1-ml1-r16"]
    mac = by_id["w1-cx0-mac1-clip0-mc1-ml1-r16"]
    simd = by_id["w4-cx0-mac0-clip0-mc1-ml1-r16"]
    assert mac.cycles["fir3"] < scalar.cycles["fir3"]
    assert simd.cycles["scale"] < scalar.cycles["scale"]


# ---------------------------------------------------------------------
# Crash isolation
# ---------------------------------------------------------------------

def test_injected_crash_burns_only_that_candidate(tmp_path):
    victim = "w4-cx0-mac1-clip0-mc1-ml1-r16"
    clean = _search(jobs=2, cache_dir=str(tmp_path / "a")).run()
    hurt = _search(jobs=2, cache_dir=str(tmp_path / "b"),
                   retries=1, fault_hooks={victim: "crash"}).run()

    by_id = {c.point_id: c for c in hurt.candidates}
    assert by_id[victim].status == "crash"
    assert victim in by_id[victim].detail or by_id[victim].detail
    # Every other candidate still evaluated ok: innocent wave-mates
    # were exonerated by the isolation rounds, their budgets intact.
    for candidate in hurt.candidates:
        if candidate.point_id != victim:
            assert candidate.ok, candidate.detail

    # Survivors score identically to the clean run...
    clean_by_id = {c.point_id: c for c in clean.candidates}
    for candidate in hurt.evaluated:
        assert candidate.cycles == clean_by_id[candidate.point_id].cycles
    # ...and the front is exactly the clean front minus the victim.
    expected = pareto_front([c for c in clean.candidates
                             if c.ok and c.point_id != victim])
    assert [c.point_id for c in hurt.front] == \
        [c.point_id for c in expected]
    assert all(c.point_id != victim for c in hurt.front)


def test_reference_failure_is_a_repro_error(tmp_path):
    broken = [KernelSpec(name="broken", source="function y = f(x)\n"
                         "y = no_such_builtin(x);\nend",
                         args=("double:1x8",), entry=None)]
    search = DesignSpaceSearch(broken, SPACE, seed=1,
                               cache_dir=str(tmp_path))
    with pytest.raises(ReproError, match="broken"):
        search.run()


def test_empty_corpus_rejected():
    with pytest.raises(ReproError, match="non-empty"):
        DesignSpaceSearch([], SPACE)


# ---------------------------------------------------------------------
# Space validation and sampling
# ---------------------------------------------------------------------

def test_default_space_is_48_candidates():
    assert len(DEFAULT_SPACE) == 48
    points = DEFAULT_SPACE.enumerate()
    assert len(points) == len({p.point_id for p in points})


@pytest.mark.parametrize("doc,match", [
    ({"simd_f32_lanes": [0]}, "SIMD width"),
    ({"simd_f32_lanes": [3]}, "power of two"),
    ({"mac_cycles": [-1]}, "mac_cycles"),
    ({"mul_cycles": [0]}, "mul_cycles"),
    ({"complex_unit": [1]}, "true or false"),
    ({"registers": [2]}, "register count"),
    ({"registers": [True]}, "register count"),
    ({"simd_f32_lanes": []}, "non-empty"),
    ({"simd_f32_lanes": [4, 4]}, "duplicate"),
    ({"banana": [1]}, "unknown axis"),
])
def test_malformed_space_is_a_sourced_space_error(doc, match):
    doc = {"name": "bad", **doc}
    with pytest.raises(SpaceError, match=match) as info:
        DesignSpace(doc, source="space.json")
    assert "space.json" in str(info.value)


def test_load_space_missing_file_is_space_error(tmp_path):
    with pytest.raises(SpaceError, match="cannot read"):
        load_space(str(tmp_path / "nope.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SpaceError, match="not valid JSON"):
        load_space(str(bad))


def test_sample_is_deterministic_subset_in_canonical_order():
    all_points = DEFAULT_SPACE.enumerate()
    order = {p.point_id: i for i, p in enumerate(all_points)}
    a = DEFAULT_SPACE.sample(10, seed=3)
    b = DEFAULT_SPACE.sample(10, seed=3)
    c = DEFAULT_SPACE.sample(10, seed=4)
    assert [p.point_id for p in a] == [p.point_id for p in b]
    assert a != c
    indices = [order[p.point_id] for p in a]
    assert indices == sorted(indices)
    assert DEFAULT_SPACE.sample(0, seed=3) == all_points
    assert DEFAULT_SPACE.sample(999, seed=3) == all_points


def test_design_point_spec_roundtrip():
    point = DEFAULT_SPACE.enumerate()[17]
    again = DesignPoint.from_spec(point.to_spec())
    assert again == point
    assert again.to_spec() == point.to_spec()
    with pytest.raises(IsaError, match="not valid JSON"):
        DesignPoint.from_spec("dse:{nope")
    with pytest.raises(IsaError, match="keys"):
        DesignPoint.from_spec('dse:{"simd_f32_lanes": 4}')


def test_design_point_materializes_expected_isa():
    point = DesignPoint(simd_f32_lanes=4, complex_unit=True,
                        scalar_mac=True, clip_unit=True,
                        mac_cycles=1, mul_cycles=2, registers=32)
    processor = point.processor()
    names = {instr.name for instr in processor.instructions}
    assert "vadd_f32x4" in names
    assert "cmul_c128" in names
    assert "mac_f64" in names
    assert "clip_f64" in names
    assert "registers=32" in processor.description
    bad = DesignPoint(simd_f32_lanes=0, complex_unit=False,
                      scalar_mac=False, clip_unit=False,
                      mac_cycles=1, mul_cycles=1, registers=16)
    with pytest.raises(IsaError, match="SIMD width"):
        bad.processor()


# ---------------------------------------------------------------------
# Cost model and corpus loading
# ---------------------------------------------------------------------

def test_cost_model_monotone_in_hardware():
    base = DesignPoint(simd_f32_lanes=1, complex_unit=False,
                       scalar_mac=False, clip_unit=False,
                       mac_cycles=2, mul_cycles=2, registers=16)

    def variant(**fields):
        return DesignPoint(**{**base.to_dict(), **fields})

    assert isinstance(hardware_cost(base), int)
    assert hardware_cost(variant(simd_f32_lanes=4)) > hardware_cost(base)
    assert hardware_cost(variant(simd_f32_lanes=8)) > \
        hardware_cost(variant(simd_f32_lanes=4))
    assert hardware_cost(variant(complex_unit=True)) > hardware_cost(base)
    assert hardware_cost(variant(scalar_mac=True)) > hardware_cost(base)
    assert hardware_cost(variant(clip_unit=True)) > hardware_cost(base)
    assert hardware_cost(variant(registers=64)) > hardware_cost(base)
    # A faster MAC only costs extra when there is MAC hardware to widen.
    assert hardware_cost(variant(mac_cycles=1)) == hardware_cost(base)
    assert hardware_cost(variant(scalar_mac=True, mac_cycles=1)) > \
        hardware_cost(variant(scalar_mac=True))


def test_dominates_basics():
    assert dominates({"speedup": 2.0, "cost": 100},
                     {"speedup": 1.0, "cost": 100})
    assert dominates({"speedup": 1.0, "cost": 50},
                     {"speedup": 1.0, "cost": 100})
    assert not dominates({"speedup": 1.0, "cost": 100},
                         {"speedup": 1.0, "cost": 100})
    assert not dominates({"speedup": 2.0, "cost": 200},
                         {"speedup": 1.0, "cost": 100})


def test_load_corpus_sorted_and_diagnosed(tmp_path):
    (tmp_path / "b.m").write_text(SCALE)
    (tmp_path / "a.m").write_text(FIR3)
    (tmp_path / "manifest.json").write_text(json.dumps({
        "b.m": {"args": "double:1x16,double", "entry": "scale"},
        "a.m": {"args": "double:1x32,double:1x3", "entry": "fir3"},
    }))
    kernels = load_corpus(str(tmp_path))
    assert [k.name for k in kernels] == ["fir3", "scale"]
    assert kernels[0].args == ("double:1x32", "double:1x3")

    with pytest.raises(ReproError, match="cannot read"):
        load_corpus(str(tmp_path / "nope"))
    (tmp_path / "bad.json").write_text("[1]")
    with pytest.raises(ReproError, match="JSON object"):
        load_corpus(str(tmp_path / "bad.json"))
    (tmp_path / "manifest.json").write_text(json.dumps({
        "missing.m": {"args": "double:1x8"}}))
    with pytest.raises(ReproError, match="missing.m"):
        load_corpus(str(tmp_path))
