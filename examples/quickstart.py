"""Quickstart: the whole compiler flow on one small kernel.

Mirrors the paper's Figure-1 pipeline stage by stage:

    MATLAB source -> type/shape specialization -> IR -> scalar
    optimization -> SIMD/complex instruction selection -> ANSI C
    with intrinsics -> cycle-accurate ASIP simulation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CompilerOptions, arg, compile_source

SOURCE = """
function y = scale_and_offset(x, gain, offset)
% y = gain .* x + offset, element-wise
y = gain .* x + offset;
end
"""


def main() -> None:
    # 1. Describe the entry-point signature (like MATLAB Coder -args).
    args = [arg((1, 64)), arg((1, 1), value=None), arg((1, 1))]

    # 2. Compile for the shipped SIMD ASIP.
    result = compile_source(SOURCE, args=args, processor="vliw_simd_dsp")

    print("=== optimization pipeline statistics ===")
    for name, count in sorted(result.pass_stats.items()):
        print(f"  {name}: {count} round(s) made changes")

    print("\n=== final IR (vectorized, custom instructions selected) ===")
    print(result.ir_dump())

    print("\n=== generated ANSI C (excerpt: the compiled function) ===")
    c_text = result.c_source()
    marker = "/* ---- compiled MATLAB functions"
    print(c_text[c_text.index(marker):])

    # 3. Run on the cycle-accurate ASIP model and check the numbers.
    x = np.linspace(-1.0, 1.0, 64)
    run = result.simulate([x, 2.5, 0.125])
    expected = 2.5 * x + 0.125
    error = np.max(np.abs(run.outputs[0].ravel() - expected))
    print("=== simulation ===")
    print(f"  cycles: {run.report.total}")
    print(f"  custom instructions used: {run.report.instruction_counts}")
    print(f"  max abs error vs numpy: {error:.3e}")

    # 4. Compare with the MATLAB-Coder-style baseline on the same core.
    baseline = compile_source(SOURCE, args=args,
                              processor="vliw_simd_dsp",
                              options=CompilerOptions.baseline())
    base_run = baseline.simulate([x, 2.5, 0.125])
    print(f"  baseline cycles: {base_run.report.total} "
          f"(speedup {base_run.report.total / run.report.total:.2f}x)")


if __name__ == "__main__":
    main()
