"""A multi-function DSP application: channel filter + spectral peak.

Shows that the compiler handles whole programs, not just single kernels:
user helper functions are specialized per call signature, the compiler's
MATLAB-source library kernels (filter, fft) are pulled in transparently,
and the generated C contains one function per specialization.

The application: low-pass-filter a noisy two-tone signal, window it,
and locate the dominant spectral bin.

Run:  python examples/dsp_pipeline.py
"""

import numpy as np

from repro import MatlabInterpreter, arg, compile_source

SOURCE = """
function [peak_bin, peak_power] = tone_detect(x, b, a)
% Filter, apply a Hann window, and find the dominant FFT bin.
y = filter(b, a, x);
w = hann_window(length(y));
z = y .* w;
P = power_spectrum(z);
half = floor(length(P) / 2);
[peak_power, peak_bin] = max(P(1:half));
end

function w = hann_window(n)
w = zeros(1, n);
for k = 1:n
    w(k) = 0.5 - 0.5 * cos(2 * pi * (k - 1) / (n - 1));
end
end

function P = power_spectrum(z)
n = length(z);
X = fft(z);
P = zeros(1, n);
for k = 1:n
    P(k) = real(X(k)) * real(X(k)) + imag(X(k)) * imag(X(k));
end
end
"""


def main() -> None:
    n = 256
    fs = 1000.0
    t = np.arange(n) / fs
    tone = np.sin(2 * np.pi * 60.0 * t) + 0.5 * np.sin(2 * np.pi * 170.0 * t)
    rng = np.random.default_rng(1)
    x = (tone + 0.2 * rng.standard_normal(n)).reshape(1, -1)
    # Simple low-pass biquad (passes 60 Hz, attenuates 170 Hz).
    b = np.array([[0.0675, 0.1349, 0.0675]])
    a = np.array([[1.0, -1.1430, 0.4128]])

    args = [arg((1, n)), arg((1, 3)), arg((1, 3))]
    result = compile_source(SOURCE, args=args, entry="tone_detect",
                            processor="vliw_simd_dsp")

    print("specialized functions in the generated module:")
    for func in result.module.functions:
        print(f"  {func.name}  (from {func.source_name})")

    run = result.simulate([x, b, a])
    peak_bin, peak_power = run.outputs
    frequency = (peak_bin - 1) * fs / n

    golden_bin, golden_power = MatlabInterpreter(SOURCE).call(
        "tone_detect", [x, b, a], nargout=2)
    golden_bin = float(np.asarray(golden_bin).ravel()[0])

    print(f"\ndominant tone: bin {int(peak_bin)} = {frequency:.1f} Hz "
          f"(power {peak_power:.1f})")
    print(f"golden interpreter agrees: bin {int(golden_bin)}")
    print(f"cycles on vliw_simd_dsp: {run.report.total}")
    assert int(peak_bin) == int(golden_bin)
    assert abs(frequency - 60.0) < fs / n + 1e-9, "expected the 60 Hz tone"


if __name__ == "__main__":
    main()
