"""Retargeting: one MATLAB source, many processor descriptions.

Demonstrates the paper's central claim — the specialized instruction set
is described "in a parameterized way allowing the support of any
processor".  The same complex-dot-product source is compiled for the
three shipped targets plus a *user-defined* ASIP assembled inline from
the instruction-set building blocks, with no compiler changes.

Run:  python examples/retarget_sweep.py
"""

from pathlib import Path

import numpy as np

from repro import (
    CompilerOptions,
    CostTable,
    MatlabInterpreter,
    ProcessorDescription,
    arg,
    compile_source,
    load_processor,
    make_complex_instruction_set,
    make_simd_instruction_set,
)
from repro.ir.types import ScalarKind

KERNEL = Path(__file__).parent / "mlab" / "cdot.m"


def my_custom_asip() -> ProcessorDescription:
    """A user-authored target: narrow SIMD + a strong complex unit."""
    instructions = []
    instructions += make_simd_instruction_set(ScalarKind.C128, 2,
                                              mac_cycles=1)
    instructions += make_complex_instruction_set(ScalarKind.C128,
                                                 mul_cycles=1, mac_cycles=1)
    return ProcessorDescription(
        name="my_custom_asip",
        description="example user-defined target: complex-MAC-heavy",
        costs=CostTable(load=1, store=1),
        instructions=instructions,
    )


def main() -> None:
    source = KERNEL.read_text()
    n = 256
    args = [arg((1, n), complex=True), arg((1, n), complex=True)]

    rng = np.random.default_rng(7)
    a = rng.standard_normal((1, n)) + 1j * rng.standard_normal((1, n))
    b = rng.standard_normal((1, n)) + 1j * rng.standard_normal((1, n))
    golden = complex(np.asarray(
        MatlabInterpreter(source).call("cdot", [a, b])[0]).ravel()[0])

    targets = [load_processor("generic_scalar_dsp"),
               load_processor("vliw_simd_dsp"),
               load_processor("wide_simd_dsp"),
               my_custom_asip()]

    print(f"complex dot product, {n} points — same source, four targets\n")
    print(f"{'target':<22} {'baseline':>10} {'optimized':>10} "
          f"{'speedup':>8}  key instructions")
    for processor in targets:
        optimized = compile_source(source, args=args, processor=processor)
        baseline = compile_source(source, args=args, processor=processor,
                                  options=CompilerOptions.baseline())
        run_opt = optimized.simulate([a, b])
        run_base = baseline.simulate([a, b])
        assert abs(run_opt.outputs[0] - golden) < 1e-9 * n
        mix = sorted(run_opt.report.instruction_counts.items(),
                     key=lambda kv: -kv[1])[:2]
        mix_text = ", ".join(f"{k} x{v}" for k, v in mix) or "(none)"
        print(f"{processor.name:<22} {run_base.report.total:>10} "
              f"{run_opt.report.total:>10} "
              f"{run_base.report.total / run_opt.report.total:>7.2f}x"
              f"  {mix_text}")


if __name__ == "__main__":
    main()
