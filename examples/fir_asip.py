"""FIR filter on the SIMD ASIP: the paper's flagship benchmark, end to end.

Validates the compiled kernel three ways against the golden MATLAB
interpreter — the cycle simulator on optimized IR, the simulator on the
baseline IR, and (when gcc is available) the generated ANSI C compiled
and executed on the host — then reports the speedup and the selected
custom-instruction mix.

Run:  python examples/fir_asip.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import CompilerOptions, MatlabInterpreter, arg, compile_source

KERNEL = Path(__file__).parent / "mlab" / "fir.m"


def main() -> None:
    source = KERNEL.read_text()
    n, taps = 512, 32
    args = [arg((1, n), dtype="single"), arg((1, taps), dtype="single")]

    rng = np.random.default_rng(42)
    x = rng.standard_normal((1, n)).astype(np.float32)
    h = (rng.standard_normal((1, taps)) / taps).astype(np.float32)

    golden = np.asarray(MatlabInterpreter(source).call("fir", [x, h])[0])

    optimized = compile_source(source, args=args, processor="vliw_simd_dsp")
    baseline = compile_source(source, args=args, processor="vliw_simd_dsp",
                              options=CompilerOptions.baseline())

    run_opt = optimized.simulate([x, h])
    run_base = baseline.simulate([x, h])

    def report(label, run) -> None:
        error = np.max(np.abs(np.asarray(run.outputs[0]) - golden))
        print(f"  {label:<10} cycles={run.report.total:>9}  "
              f"max_err={error:.2e}")

    print(f"FIR {n} samples x {taps} taps (single precision)")
    report("optimized", run_opt)
    report("baseline", run_base)
    print(f"  speedup: "
          f"{run_base.report.total / run_opt.report.total:.2f}x")
    print("  instruction mix (optimized):")
    for name, count in sorted(run_opt.report.instruction_counts.items()):
        print(f"    {name:<18} x{count}")

    if shutil.which("gcc"):
        from repro.backend.harness import run_via_gcc
        host = run_via_gcc(optimized, [x, h])
        error = np.max(np.abs(np.asarray(host[0]) - golden))
        print(f"  gcc -std=c89 host run: max_err={error:.2e}")
    else:
        print("  (gcc not found; skipping host-compilation check)")


if __name__ == "__main__":
    main()
