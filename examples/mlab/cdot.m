function s = cdot(a, b)
% Complex dot product s = a' * b (conjugated first argument):
% the complex multiply-accumulate exercises the cmac/cconj unit.
n = length(a);
s = 0;
for k = 1:n
    s = s + conj(a(k)) * b(k);
end
end
