function p = vec_power(v)
% Squared 2-norm of a complex vector, accumulated by a
% counter-bounded while loop (exact in every engine).
n = length(v);
p = 0;
k = 1;
while k <= n
    p = p + real(v(k) * conj(v(k)));
    k = k + 1;
end
end

function [w, g] = bf_weights(h, sigma)
% MRC beamforming weights with diagonal loading:
% w = conj(h) / (||h||^2 + sigma), plus the array gain g — the
% per-resource-block weight computation of a massive-MIMO combiner.
n = length(h);
p = vec_power(h);
d = p + sigma;
w = complex(zeros(1, n), zeros(1, n));
for k = 1:n
    w(k) = conj(h(k)) / d;
end
g = p / d;
end
