function r = xcorr_kernel(x, y)
% Cross-correlation for non-negative lags:
% r(m) = sum_n x(n) * y(n + m - 1).
N = length(x);
L = length(y) - N + 1;
r = zeros(1, L);
for m = 1:L
    acc = 0;
    for n = 1:N
        acc = acc + x(n) * y(n + m - 1);
    end
    r(m) = acc;
end
end
