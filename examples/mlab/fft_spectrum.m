function P = fft_spectrum(x)
% Power spectrum |FFT(x)|.^2 via the radix-2 FFT and the |z|^2 idiom
% (maps to the cmag2 custom instruction).
n = length(x);
X = fft(x);
P = zeros(1, n);
for k = 1:n
    P(k) = real(X(k)) * real(X(k)) + imag(X(k)) * imag(X(k));
end
end
