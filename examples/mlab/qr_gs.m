function s = col_dot(u, v, m, k, j)
% Dot product of column k of u with column j of v, accumulated by a
% counter-bounded while loop (exact in every engine).
s = 0;
i = 1;
while i <= m
    s = s + u(i, k) * v(i, j);
    i = i + 1;
end
end

function [q, r] = qr_gs(a)
% QR factorization via modified Gram-Schmidt: q orthonormal, r upper
% triangular, a = q*r.  The column-dot helper specializes once and is
% called from two sites (q'q and q'a).
m = size(a, 1);
n = size(a, 2);
q = a;
r = zeros(n, n);
for k = 1:n
    r(k, k) = sqrt(col_dot(q, q, m, k, k));
    for i = 1:m
        q(i, k) = q(i, k) / r(k, k);
    end
    for j = k + 1:n
        r(k, j) = col_dot(q, a, m, k, j);
        for i = 1:m
            q(i, j) = q(i, j) - r(k, j) * q(i, k);
        end
    end
end
end
