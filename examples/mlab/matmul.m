function C = matmul(A, B)
% Dense matrix product. Lowered in jki order: the innermost loop
% walks contiguous columns, which the SIMD vectorizer strip-mines.
C = A * B;
end
