function y = fir(x, h)
% FIR filter, direct form: y(n) = sum_k h(k) * x(n-k+1).
% The inner multiply-accumulate loop is the classic SIMD target.
N = length(x);
M = length(h);
y = zeros(1, N);
for n = 1:N
    acc = 0;
    kmax = min(n, M);
    for k = 1:kmax
        acc = acc + h(k) * x(n - k + 1);
    end
    y(n) = acc;
end
end
