function c = cof2(x, y, z, w)
% Elementwise 2x2 determinant over a batch of matrices: each input is
% a 1xT row slice, so one call computes the same cofactor for every
% matrix in the batch.
c = x .* y - z .* w;
end

function [b, dets] = inv3x3(a)
% Batched adjugate-based 3x3 inversion in structure-of-arrays layout:
% column t of the 9xT input holds matrix t in column-major order
% (a11 a21 a31 a12 ... a33).  Every cofactor is a whole-row
% elementwise op, so the batch dimension vectorizes end to end
% (MIMO equalizer inner loop).
t = size(a, 2);
c1 = cof2(a(5, :), a(9, :), a(8, :), a(6, :));
m12 = cof2(a(2, :), a(9, :), a(8, :), a(3, :));
m13 = cof2(a(2, :), a(6, :), a(5, :), a(3, :));
dets = a(1, :) .* c1 - a(4, :) .* m12 + a(7, :) .* m13;
s = 1.0 ./ dets;
b = zeros(9, t);
b(1, :) = c1 .* s;
b(2, :) = -m12 .* s;
b(3, :) = m13 .* s;
b(4, :) = -cof2(a(4, :), a(9, :), a(7, :), a(6, :)) .* s;
b(5, :) = cof2(a(1, :), a(9, :), a(7, :), a(3, :)) .* s;
b(6, :) = -cof2(a(1, :), a(6, :), a(4, :), a(3, :)) .* s;
b(7, :) = cof2(a(4, :), a(8, :), a(7, :), a(5, :)) .* s;
b(8, :) = -cof2(a(1, :), a(8, :), a(7, :), a(2, :)) .* s;
b(9, :) = cof2(a(1, :), a(5, :), a(4, :), a(2, :)) .* s;
end
