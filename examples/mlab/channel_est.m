function h = ls_point(r, p)
% One least-squares pilot estimate: r / p with a guarded magnitude
% (the per-subcarrier division of the OFDM front end).
h = r * conj(p) / (real(p * conj(p)) + 1e-12);
end

function [h_hat, noise] = channel_est(rx, pilots)
% LS channel estimation over pilot subcarriers plus a residual
% noise-power estimate — the 5G OFDM front-end kernel.  Each
% subcarrier calls the user-defined ls_point helper; the residual
% pass is written as whole-array ops the vectorizer strip-mines.
n = length(rx);
h_hat = complex(zeros(1, n), zeros(1, n));
for k = 1:n
    h_hat(k) = ls_point(rx(k), pilots(k));
end
d = rx - h_hat .* pilots;
noise = real(sum(d .* conj(d))) / n;
end
