function y = iir_biquad(x, b, a)
% Cascade of two identical direct-form-I biquad sections.
% The loop-carried recurrence on y blocks vectorization, so this
% kernel anchors the low end of the speedup range.
N = length(x);
w = zeros(1, N);
y = zeros(1, N);
for n = 1:N
    acc = b(1) * x(n);
    if n > 1
        acc = acc + b(2) * x(n - 1) - a(2) * w(n - 1);
    end
    if n > 2
        acc = acc + b(3) * x(n - 2) - a(3) * w(n - 2);
    end
    w(n) = acc;
end
for n = 1:N
    acc = b(1) * w(n);
    if n > 1
        acc = acc + b(2) * w(n - 1) - a(2) * y(n - 1);
    end
    if n > 2
        acc = acc + b(3) * w(n - 2) - a(3) * y(n - 2);
    end
    y(n) = acc;
end
end
