"""Design-space exploration over the E1 corpus (ISSUE PR 9).

Runs the shipped 48-candidate default space over the ten example
kernels through the compile service (``jobs=4``) and records:

* the paper-style Pareto-front table (design, cost, speedup),
* the search trajectory to ``BENCH_dse.json`` (``*_wall_s`` fields
  gated by ``repro-stats check`` in CI),
* floors the front must clear — the search is only useful if the
  rich ISA points actually beat the scalar anchor.

The determinism contract (byte-identical front at ``--jobs 1`` vs
``--jobs 8``) is proven by ``tests/test_dse.py`` on a small space and
re-checked by the CI ``dse-smoke`` job on this corpus at full scale.
"""

from __future__ import annotations

import json
import os

from repro.dse import DEFAULT_SPACE, DesignSpaceSearch, load_corpus
from repro.observe import TraceSession, trace as obs_trace

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "examples", "mlab")

SEED = 0
JOBS = 4


def test_default_space_front_over_e1_corpus(record_row, record_dse_bench):
    corpus = load_corpus(CORPUS_DIR)
    assert len(corpus) == 10

    session = TraceSession()
    with obs_trace.use(session):
        search = DesignSpaceSearch(
            corpus, DEFAULT_SPACE, jobs=JOBS, seed=SEED,
            cache_dir=os.environ.get("REPRO_CACHE_DIR"))
        result = search.run()

    assert len(result.candidates) == 48
    failed = [c for c in result.candidates if not c.ok]
    assert not failed, [(c.point_id, c.detail) for c in failed]

    front = result.front
    assert front, "the default space must produce a non-empty front"
    for scored in front:
        record_row("DSE Pareto front (default space, E1 corpus)",
                   ["design", "cost", "speedup"],
                   design=scored.point_id, cost=scored.cost,
                   speedup=f"{scored.speedup:.2f}x")

    # Floors: the cheapest point is the plain scalar anchor at
    # speedup ~1x, and at least one richer design must clear 2x —
    # otherwise the ISA axes are not being measured at all.
    best = max(scored.speedup for scored in front)
    assert best >= 2.0, f"best front speedup only {best:.2f}x"
    cheapest = front[0]
    assert cheapest.cost == min(c.cost for c in result.candidates)
    # Every front member earns its cost: speedups strictly increase
    # along the canonical (cost-ascending) front order.
    speedups = [scored.speedup for scored in front]
    assert speedups == sorted(speedups)

    record_dse_bench(
        "reference",
        reference_wall_s=round(result.baseline_wall_s, 6),
        kernels=len(corpus))
    record_dse_bench(
        "search",
        search_wall_s=round(result.search_wall_s, 6),
        candidates=len(result.candidates),
        evaluations=len(result.candidates) * len(corpus),
        front_size=len(front),
        best_speedup=round(best, 4),
        workers=JOBS)

    # Keep the deterministic front document alongside the trajectory
    # so the committed artifact and the smoke golden share a source.
    out = os.path.join(os.path.dirname(__file__), "results",
                       "FRONT_dse_e1.json")
    with open(out, "w") as handle:
        handle.write(result.to_json())
    assert json.loads(result.to_json())["front"]
