"""Shared fixtures and the paper-style table reporter.

Every experiment registers its result rows through ``record_row``; at
the end of the session the rows are printed grouped by experiment, in
the layout of the paper's tables, and also written to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.

Performance-trajectory tracking: tests measuring executor wall time
register per-kernel entries through ``record_bench``; at session end
they are written machine-readably to ``benchmarks/results/BENCH_e1.json``
(per-kernel wall time for both simulator backends, cycle counts, and
speedups) so future changes can be checked against the recorded
trajectory.
"""

from __future__ import annotations

import json
import platform
from collections import defaultdict
from pathlib import Path

import pytest

_RESULTS: dict[str, list[dict]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}
_BENCH: dict[str, dict] = {}

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_e1.json"


@pytest.fixture
def record_row():
    """Callable: record_row(experiment, headers, **row)."""

    def record(experiment: str, headers: list[str], **row) -> None:
        _HEADERS[experiment] = headers
        _RESULTS[experiment].append(row)

    return record


@pytest.fixture
def record_bench():
    """Callable: record_bench(kernel, **fields).

    Fields accumulate per kernel (later calls update earlier ones), and
    the merged records land in ``BENCH_e1.json`` at session end.
    """

    def record(kernel: str, **fields) -> None:
        _BENCH.setdefault(kernel, {"kernel": kernel}).update(fields)

    return record


def _format_table(experiment: str) -> str:
    headers = _HEADERS[experiment]
    rows = _RESULTS[experiment]
    widths = [max(len(h), *(len(str(r.get(h, ""))) for r in rows))
              for h in headers]
    lines = [experiment]
    lines.append("  " + "  ".join(h.ljust(w)
                                  for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  " + "  ".join(
            str(row.get(h, "")).ljust(w) for h, w in zip(headers, widths)))
    return "\n".join(lines)


def _write_bench_json() -> None:
    kernels = [_BENCH[name] for name in sorted(_BENCH)]
    ref = sum(k.get("reference_wall_s", 0.0) for k in kernels)
    comp = sum(k.get("compiled_wall_s", 0.0) for k in kernels)
    payload = {
        "experiment": "E1",
        "python": platform.python_version(),
        "kernels": kernels,
        "aggregate": {
            "reference_wall_s": round(ref, 6),
            "compiled_wall_s": round(comp, 6),
            "wall_speedup": round(ref / comp, 2) if comp else None,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH:
        _write_bench_json()
        terminalreporter.write_line(
            f"wrote backend wall-time trajectory to {BENCH_JSON}")
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "reproduced paper tables/figures")
    for experiment in sorted(_RESULTS):
        table = _format_table(experiment)
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
        safe = experiment.split(" ")[0].lower()
        (RESULTS_DIR / f"{safe}.txt").write_text(table + "\n")
