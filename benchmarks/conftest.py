"""Shared fixtures and the paper-style table reporter.

Every experiment registers its result rows through ``record_row``; at
the end of the session the rows are printed grouped by experiment, in
the layout of the paper's tables, and also written to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

import pytest

_RESULTS: dict[str, list[dict]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def record_row():
    """Callable: record_row(experiment, headers, **row)."""

    def record(experiment: str, headers: list[str], **row) -> None:
        _HEADERS[experiment] = headers
        _RESULTS[experiment].append(row)

    return record


def _format_table(experiment: str) -> str:
    headers = _HEADERS[experiment]
    rows = _RESULTS[experiment]
    widths = [max(len(h), *(len(str(r.get(h, ""))) for r in rows))
              for h in headers]
    lines = [experiment]
    lines.append("  " + "  ".join(h.ljust(w)
                                  for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  " + "  ".join(
            str(row.get(h, "")).ljust(w) for h, w in zip(headers, widths)))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "reproduced paper tables/figures")
    for experiment in sorted(_RESULTS):
        table = _format_table(experiment)
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
        safe = experiment.split(" ")[0].lower()
        (RESULTS_DIR / f"{safe}.txt").write_text(table + "\n")
