"""Shared fixtures and the paper-style table reporter.

Every experiment registers its result rows through ``record_row``; at
the end of the session the rows are printed grouped by experiment, in
the layout of the paper's tables, and also written to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.

Performance-trajectory tracking: tests measuring executor wall time
register per-kernel entries through ``record_bench``; at session end
they are written machine-readably to ``benchmarks/results/BENCH_e1.json``
(per-kernel wall time for both simulator backends, cycle counts, and
speedups) so future changes can be checked against the recorded
trajectory.

Native-tier trajectory: tests measuring the in-process ``.so`` tier
register entries through ``record_native_bench``; they are written to
``benchmarks/results/BENCH_native.json`` (per-kernel wall time for all
three execution tiers, cold vs warm native cache).

Parallel pre-warm: ``pytest benchmarks --jobs N`` compiles every
(kernel, processor, options) combination the experiments request into
a shared on-disk compilation cache (``REPRO_CACHE_DIR``) through
:class:`repro.service.CompileService` before the first test runs, so
the serially-measured experiments open on disk hits instead of cold
compiles.  The default-option jobs also carry ``warm_native=True`` so
the workers publish each kernel's native ``.so`` into the sibling
``<cache>/native`` store, which the parent process then points its own
native cache at — the native-tier benchmarks open warm too.
"""

from __future__ import annotations

import json
import os
import platform
from collections import defaultdict
from pathlib import Path

import pytest

_RESULTS: dict[str, list[dict]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}
_BENCH: dict[str, dict] = {}
_NATIVE_BENCH: dict[str, dict] = {}
_SERVE_BENCH: dict[str, dict] = {}
_DSE_BENCH: dict[str, dict] = {}

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_e1.json"
BENCH_NATIVE_JSON = RESULTS_DIR / "BENCH_native.json"
BENCH_SERVE_JSON = RESULTS_DIR / "BENCH_serve.json"
BENCH_DSE_JSON = RESULTS_DIR / "BENCH_dse.json"


#: Textual arg specs matching each workload's ``arg_types`` at the
#: default scale (same vocabulary as ``repro-mc --args`` and
#: ``examples/mlab/manifest.json``), so the pre-warm populates the
#: exact cache keys the experiments will ask for.
_PREWARM_SPECS = {
    "fir": ["single:1x256", "single:1x32"],
    "iir_biquad": ["double:1x256", "double:1x3", "double:1x3"],
    "cdot": ["cdouble:1x256", "cdouble:1x256"],
    "fft_spectrum": ["double:1x128"],
    "matmul": ["single:32x32", "single:32x32"],
    "xcorr_kernel": ["single:1x128", "single:1x256"],
    "channel_est": ["cdouble:1x128", "cdouble:1x128"],
    "qr_gs": ["double:12x12"],
    "inv3x3": ["double:9x64"],
    "bf_weights": ["cdouble:1x64", "double:1x1"],
}

_BASELINE_OPTIONS = {"mode": "baseline", "scalar_opt": False,
                     "inline": False, "simd": False,
                     "complex_isel": False, "scalar_mac": False}

#: E6 sweeps these kernels over parametric SIMD widths.
_SWEEP_KERNELS = ("fir", "matmul", "xcorr")
_SWEEP_WIDTHS = (2, 4, 8, 16)


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=0, dest="repro_jobs",
        help="pre-warm a shared compilation cache with this many "
             "worker processes before the experiments run (0 = off)")


@pytest.fixture(scope="session", autouse=True)
def _prewarm_compile_cache(request, tmp_path_factory):
    jobs = request.config.getoption("repro_jobs")
    if jobs < 1:
        yield
        return
    from workloads import default_workloads

    from repro.service import CompileJob, CompileService, next_job_id

    created = not os.environ.get("REPRO_CACHE_DIR")
    if created:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache"))
    cache_dir = os.environ["REPRO_CACHE_DIR"]

    combos = []
    for workload in default_workloads():
        processors = ["vliw_simd_dsp"]
        if workload.name in _SWEEP_KERNELS:
            processors += [f"simd_width:{w}" for w in _SWEEP_WIDTHS]
        for processor in processors:
            for options in ({}, dict(_BASELINE_OPTIONS)):
                combos.append(CompileJob(
                    job_id=next_job_id(), source=workload.source,
                    args=list(_PREWARM_SPECS[workload.entry]),
                    entry=workload.entry, processor=processor,
                    options=options, filename=f"{workload.entry}.m",
                    timeout=300.0,
                    # Publish the native .so alongside the C artifact so
                    # the native-tier benchmarks open warm (full-optimizer
                    # configs only — those are what the experiments run).
                    warm_native=not options))

    # Point this (parent) process at the same native store the workers
    # publish into, so simulate(backend="native") below opens on disk
    # hits instead of cold gcc builds.
    from repro import native
    native.configure(cache_dir=os.path.join(cache_dir, "native"))

    with CompileService(jobs=jobs, cache_dir=cache_dir) as service:
        batch = service.compile_batch(combos)
    failed = batch.failed()
    line = (f"pre-warmed {cache_dir} with "
            f"{len(combos) - len(failed)}/{len(combos)} compilations "
            f"({jobs} workers, {batch.wall_s:.1f}s)")
    if failed:
        line += "; failed: " + ", ".join(
            f"{r.job_id} [{r.status}]" for r in failed)
    print(line)
    yield
    if created:
        del os.environ["REPRO_CACHE_DIR"]


@pytest.fixture
def record_row():
    """Callable: record_row(experiment, headers, **row)."""

    def record(experiment: str, headers: list[str], **row) -> None:
        _HEADERS[experiment] = headers
        _RESULTS[experiment].append(row)

    return record


@pytest.fixture
def record_bench():
    """Callable: record_bench(kernel, **fields).

    Fields accumulate per kernel (later calls update earlier ones), and
    the merged records land in ``BENCH_e1.json`` at session end.
    """

    def record(kernel: str, **fields) -> None:
        _BENCH.setdefault(kernel, {"kernel": kernel}).update(fields)

    return record


@pytest.fixture
def record_native_bench():
    """Callable: record_native_bench(kernel, **fields).

    Same accumulate-per-kernel contract as ``record_bench``; merged
    records land in ``BENCH_native.json`` at session end.
    """

    def record(kernel: str, **fields) -> None:
        _NATIVE_BENCH.setdefault(kernel, {"kernel": kernel}).update(fields)

    return record


@pytest.fixture
def record_serve_bench():
    """Callable: record_serve_bench(phase, **fields).

    Same accumulate-per-row contract as ``record_bench`` (rows are load
    phases, not kernels); merged records land in ``BENCH_serve.json``
    at session end.  Latency fields follow the ``*_wall_s`` naming so
    ``repro-stats check`` gates them against the committed trajectory.
    """

    def record(phase: str, **fields) -> None:
        _SERVE_BENCH.setdefault(phase, {"kernel": phase}).update(fields)

    return record


@pytest.fixture
def record_dse_bench():
    """Callable: record_dse_bench(phase, **fields).

    Same accumulate-per-row contract as ``record_bench`` (rows are
    search phases: reference measurement, candidate evaluation);
    merged records land in ``BENCH_dse.json`` at session end.  Wall
    times follow the ``*_wall_s`` naming so ``repro-stats check``
    gates them against the committed trajectory.
    """

    def record(phase: str, **fields) -> None:
        _DSE_BENCH.setdefault(phase, {"kernel": phase}).update(fields)

    return record


def _format_table(experiment: str) -> str:
    headers = _HEADERS[experiment]
    rows = _RESULTS[experiment]
    widths = [max(len(h), *(len(str(r.get(h, ""))) for r in rows))
              for h in headers]
    lines = [experiment]
    lines.append("  " + "  ".join(h.ljust(w)
                                  for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  " + "  ".join(
            str(row.get(h, "")).ljust(w) for h, w in zip(headers, widths)))
    return "\n".join(lines)


def _write_bench_json() -> None:
    kernels = [_BENCH[name] for name in sorted(_BENCH)]
    ref = sum(k.get("reference_wall_s", 0.0) for k in kernels)
    comp = sum(k.get("compiled_wall_s", 0.0) for k in kernels)
    payload = {
        "experiment": "E1",
        "python": platform.python_version(),
        "kernels": kernels,
        "aggregate": {
            "reference_wall_s": round(ref, 6),
            "compiled_wall_s": round(comp, 6),
            "wall_speedup": round(ref / comp, 2) if comp else None,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _write_native_bench_json() -> None:
    kernels = [_NATIVE_BENCH[name] for name in sorted(_NATIVE_BENCH)]
    comp = sum(k.get("compiled_wall_s", 0.0) for k in kernels)
    nat = sum(k.get("native_warm_wall_s", 0.0) for k in kernels)
    payload = {
        "experiment": "native-tier",
        "python": platform.python_version(),
        "kernels": kernels,
        "aggregate": {
            "compiled_wall_s": round(comp, 6),
            "native_warm_wall_s": round(nat, 6),
            "native_speedup": round(comp / nat, 2) if nat else None,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_NATIVE_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _write_serve_bench_json() -> None:
    phases = [_SERVE_BENCH[name] for name in sorted(_SERVE_BENCH)]
    requests = sum(int(p.get("requests", 0)) for p in phases)
    shed = sum(int(p.get("shed", 0)) for p in phases)
    payload = {
        "experiment": "serve-load",
        "python": platform.python_version(),
        "kernels": phases,
        "aggregate": {
            "requests": requests,
            "shed": shed,
            "shed_rate": round(shed / requests, 4) if requests else None,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_SERVE_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _write_dse_bench_json() -> None:
    phases = [_DSE_BENCH[name] for name in sorted(_DSE_BENCH)]
    total = sum(p.get(k, 0.0) for p in phases for k in p
                if k.endswith("_wall_s"))
    front = max((int(p.get("front_size", 0)) for p in phases),
                default=0)
    best = max((p.get("best_speedup", 0.0) for p in phases),
               default=0.0)
    payload = {
        "experiment": "dse-search",
        "python": platform.python_version(),
        "kernels": phases,
        "aggregate": {
            "search_total_wall_s": round(total, 6),
            "front_size": front,
            "best_speedup": round(best, 4),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_DSE_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH:
        _write_bench_json()
        terminalreporter.write_line(
            f"wrote backend wall-time trajectory to {BENCH_JSON}")
    if _NATIVE_BENCH:
        _write_native_bench_json()
        terminalreporter.write_line(
            f"wrote native-tier trajectory to {BENCH_NATIVE_JSON}")
    if _SERVE_BENCH:
        _write_serve_bench_json()
        terminalreporter.write_line(
            f"wrote serve-load trajectory to {BENCH_SERVE_JSON}")
    if _DSE_BENCH:
        _write_dse_bench_json()
        terminalreporter.write_line(
            f"wrote design-space-search trajectory to {BENCH_DSE_JSON}")
    if not _RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "reproduced paper tables/figures")
    for experiment in sorted(_RESULTS):
        table = _format_table(experiment)
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
        safe = experiment.split(" ")[0].lower()
        (RESULTS_DIR / f"{safe}.txt").write_text(table + "\n")
