"""Load harness for the ``repro-serve`` compile daemon.

Drives a real daemon (HTTP over a unix socket, server in a background
event-loop thread, one ``ServeClient`` per load thread) through the
three phases a serving deployment cares about, and records the
trajectory to ``benchmarks/results/BENCH_serve.json``:

* ``cold_burst`` — many simultaneous clients ask for one identical
  cold kernel; coalescing must make it cost exactly one compile.
* ``warm_load`` — ≥ 1000 requests over a handful of warm kernels;
  p50/p99 request latency (``*_wall_s`` fields, so ``repro-stats
  check`` gates them) and the shed rate, which must be zero — cache
  hits bypass admission control entirely.
* ``overload`` — more distinct cold compiles at once than the
  admission queue holds; the surplus is shed with 429 and every
  accepted request still completes ``ok``.
"""

from __future__ import annotations

import asyncio
import statistics
import threading
import time

import pytest

from repro.serve import CompileDaemon, Server, ServeClient

#: The warm working set: small distinct kernels, compiled once each.
WARM_KERNELS = [
    (f"function y = warm{tag}(x)\ny = x * {tag}.0 + 0.5;\nend\n",
     ["double:1x32"])
    for tag in range(4)
]

LOAD_THREADS = 8
LOAD_REQUESTS_PER_THREAD = 125          # 8 * 125 = 1000 warm requests
BURST_CLIENTS = 12
OVERLOAD_CLIENTS = 12


class _ServeHarness:
    """Daemon + HTTP server on a unix socket, loop in a thread."""

    def __init__(self, tmp_path, **daemon_kw):
        self.socket_path = str(tmp_path / "serve.sock")
        self.daemon = CompileDaemon(**daemon_kw).start()
        self.loop = asyncio.new_event_loop()
        self.server = Server(self.daemon, path=self.socket_path)
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop).result(timeout=10)

    def counters(self) -> dict:
        return self.daemon.registry.snapshot()["counters"]

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout=10)
        self.daemon.stop()
        asyncio.run_coroutine_threadsafe(
            self.server.close_connections(),
            self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    fixture = _ServeHarness(tmp_path, workers=2, queue_depth=4)
    try:
        yield fixture
    finally:
        fixture.close()


def _fan_out(count, work):
    """Run ``work(index)`` on ``count`` threads, one client each;
    returns the per-index results."""
    results = [None] * count
    errors = []
    barrier = threading.Barrier(count)

    def run(index):
        try:
            barrier.wait(timeout=30)
            results[index] = work(index)
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors
    return results


def test_serve_load_trajectory(harness, record_serve_bench):
    # ---- phase 1: cold burst, coalescing proof ----------------------
    cold = ("function y = burst(x)\ny = x + x * 2.0;\nend\n",
            ["double:1x64"])

    def burst(index):
        with ServeClient(path=harness.socket_path) as client:
            return client.compile(cold[0], cold[1], include_c=False)

    replies = _fan_out(BURST_CLIENTS, burst)
    assert all(r["status"] == "ok" and r["http_status"] == 200
               for r in replies)
    counters = harness.counters()
    # The whole burst cost exactly one compile: one leader, the rest
    # coalesced onto its in-flight future or hit the just-warmed cache.
    assert counters["serve.compiles"] == 1
    assert counters["serve.accepted"] == 1
    assert counters.get("serve.coalesced", 0) \
        + counters.get("serve.cache_hits", 0) == BURST_CLIENTS - 1
    assert harness.daemon.cache.stats()["disk_write_races"] == 0
    record_serve_bench(
        "cold_burst", requests=BURST_CLIENTS, compiles=1,
        coalesced=int(counters.get("serve.coalesced", 0)), shed=0)

    # ---- phase 2: warm the working set ------------------------------
    with ServeClient(path=harness.socket_path) as client:
        for source, args in WARM_KERNELS:
            reply = client.compile(source, args, include_c=False)
            assert reply["status"] == "ok"

    before = harness.counters()

    # ---- phase 3: sustained warm load, p50/p99 ----------------------
    def load(index):
        latencies = []
        with ServeClient(path=harness.socket_path) as client:
            for i in range(LOAD_REQUESTS_PER_THREAD):
                source, args = WARM_KERNELS[(index + i) % len(WARM_KERNELS)]
                t0 = time.perf_counter()
                reply = client.compile(source, args, include_c=False)
                latencies.append(time.perf_counter() - t0)
                assert reply["http_status"] == 200, reply
                assert reply["cached"] is True, reply
        return latencies

    latencies = [wall for chunk in _fan_out(LOAD_THREADS, load)
                 for wall in chunk]
    total = LOAD_THREADS * LOAD_REQUESTS_PER_THREAD
    assert len(latencies) == total >= 1000

    counters = harness.counters()
    assert counters["serve.requests"] - before["serve.requests"] == total
    # Warm hits never recompile and are never shed.
    assert counters["serve.compiles"] == before["serve.compiles"]
    assert counters.get("serve.shed", 0) == 0
    quantiles = statistics.quantiles(latencies, n=100)
    record_serve_bench(
        "warm_load", requests=total, shed=0,
        p50_wall_s=round(quantiles[49], 6),
        p99_wall_s=round(quantiles[98], 6))

    # ---- phase 4: overload, admission control -----------------------
    def overload(index):
        source = (f"function y = flood{index}(x)\n"
                  f"y = x - {index}.0;\nend\n")
        with ServeClient(path=harness.socket_path) as client:
            return client.compile(source, ["double:1x32"],
                                  include_c=False)

    replies = _fan_out(OVERLOAD_CLIENTS, overload)
    shed = [r for r in replies if r["status"] == "shed"]
    accepted = [r for r in replies if r["status"] == "ok"]
    # Every reply is exactly one of: accepted-and-completed, or shed
    # with a structured 429 at admission time.  Nothing is lost.
    assert len(shed) + len(accepted) == OVERLOAD_CLIENTS
    assert all(r["http_status"] == 429 for r in shed)
    assert len(shed) >= 1, "overload burst never tripped admission"
    record_serve_bench(
        "overload", requests=OVERLOAD_CLIENTS, shed=len(shed),
        accepted=len(accepted))

    # The daemon is still healthy after all four phases.
    with ServeClient(path=harness.socket_path) as client:
        assert client.healthz()["status"] == "ok"
