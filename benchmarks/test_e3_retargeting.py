"""E3 — retargetability (reconstructed Figure 2).

The same MATLAB sources are compiled against three parameterized
processor descriptions with no source or compiler changes; only the
instruction-set description differs.  Expected shape: the speedup over
the baseline grows with the richness of the target's custom instruction
set (scalar-MAC-only < SIMD ASIP < wide-SIMD ASIP), and the selected
instruction mix changes accordingly.
"""

from __future__ import annotations

import numpy as np
import pytest
from workloads import workload_by_name

from repro.compiler import CompilerOptions, compile_source

PROCESSORS = ["generic_scalar_dsp", "vliw_simd_dsp", "wide_simd_dsp"]
KERNELS = ["fir", "cdot", "matmul"]

HEADERS = ["kernel"] + PROCESSORS


def _speedup(workload, processor, inputs, golden):
    optimized = compile_source(workload.source, args=workload.arg_types,
                               entry=workload.entry, processor=processor)
    baseline = compile_source(workload.source, args=workload.arg_types,
                              entry=workload.entry, processor=processor,
                              options=CompilerOptions.baseline())
    run_opt = optimized.simulate(list(inputs))
    run_base = baseline.simulate(list(inputs))
    produced = np.asarray(run_opt.outputs[0])
    assert np.allclose(produced, golden, atol=workload.tolerance,
                       rtol=workload.tolerance)
    return run_base.report.total / run_opt.report.total


@pytest.mark.parametrize("kernel", KERNELS)
def test_e3_retargeting(kernel, benchmark, record_row):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=31)
    golden = workload.golden(inputs)

    def measure():
        return {p: _speedup(workload, p, inputs, golden)
                for p in PROCESSORS}

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_row("E3 same source, three targets: speedup vs baseline "
               "(Figure 2)", HEADERS, kernel=kernel,
               **{p: f"{speedups[p]:.2f}x" for p in PROCESSORS})

    # Richer instruction sets must not lose to poorer ones (5% slack).
    assert speedups["vliw_simd_dsp"] >= \
        speedups["generic_scalar_dsp"] * 0.95
    assert speedups["wide_simd_dsp"] >= speedups["vliw_simd_dsp"] * 0.95
    # And the SIMD targets must show a real advantage somewhere.
    assert speedups["wide_simd_dsp"] > \
        speedups["generic_scalar_dsp"] * 1.5
