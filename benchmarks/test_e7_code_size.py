"""E7 — abstraction-raising / code-size (paper Section I claim).

The paper motivates the compiler by "raising the abstraction of
application design ... while still improving implementation
efficiency": a few lines of MATLAB replace pages of target-specific C.
This experiment quantifies that for the benchmark set: MATLAB source
lines vs. generated-C lines (the code a developer would otherwise write
and maintain by hand), for both pipelines.

Shape checks: every kernel's C is several times larger than its MATLAB;
the optimized (intrinsic-bearing) C is not dramatically larger than the
baseline C — exploiting the ASIP costs the developer nothing in source
they own.
"""

from __future__ import annotations

import pytest
from workloads import default_workloads, workload_by_name

from repro.compiler import CompilerOptions, compile_source

KERNELS = [w.name for w in default_workloads()]

HEADERS = ["kernel", "matlab_lines", "baseline_c_lines",
           "optimized_c_lines", "ratio"]


def _code_lines(text: str) -> int:
    """Non-blank, non-comment lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("%") or stripped.startswith("/*") or \
                stripped.startswith("*"):
            continue
        count += 1
    return count


def _compiled_section(text: str) -> str:
    marker = "/* ---- compiled MATLAB functions"
    return text[text.index(marker):]


@pytest.mark.parametrize("kernel", KERNELS)
def test_e7_code_size(kernel, benchmark, record_row):
    workload = workload_by_name(kernel)

    def measure():
        optimized = compile_source(workload.source,
                                   args=workload.arg_types,
                                   entry=workload.entry)
        baseline = compile_source(workload.source,
                                  args=workload.arg_types,
                                  entry=workload.entry,
                                  options=CompilerOptions.baseline())
        return (_code_lines(workload.source),
                _code_lines(_compiled_section(baseline.c_source())),
                _code_lines(_compiled_section(optimized.c_source())))

    matlab_lines, base_lines, opt_lines = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    ratio = base_lines / max(matlab_lines, 1)
    record_row("E7 source size: MATLAB vs generated C (abstraction claim)",
               HEADERS, kernel=kernel, matlab_lines=matlab_lines,
               baseline_c_lines=base_lines, optimized_c_lines=opt_lines,
               ratio=f"{ratio:.1f}x")

    # The abstraction gap must be real but sane.
    assert ratio > 1.5, f"{kernel}: generated C should dwarf the MATLAB"
    assert opt_lines < base_lines * 4, \
        f"{kernel}: intrinsic exploitation should not explode code size"
