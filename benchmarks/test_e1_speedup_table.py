"""E1 — the paper's headline table (Table 1).

Speedup of the proposed compiler over the MATLAB-Coder-style baseline on
the target ASIP (``vliw_simd_dsp``), per DSP benchmark.  The paper
reports 2x-30x across its six benchmarks; the reproduced *shape* checks
are (a) every kernel speeds up, (b) streaming SIMD-friendly kernels sit
near the top of the range, (c) the recurrence-bound IIR sits at the
bottom, and (d) both compilers' outputs are numerically correct against
the golden MATLAB interpreter.
"""

from __future__ import annotations

import numpy as np
import pytest
from workloads import default_workloads, workload_by_name

from repro.compiler import CompilerOptions, compile_source
from repro.sim.machine import Simulator

PROCESSOR = "vliw_simd_dsp"
KERNELS = [w.name for w in default_workloads()]

HEADERS = ["kernel", "description", "baseline_cycles", "optimized_cycles",
           "speedup"]


def _compile_pair(workload):
    optimized = compile_source(workload.source, args=workload.arg_types,
                               entry=workload.entry, processor=PROCESSOR)
    baseline = compile_source(workload.source, args=workload.arg_types,
                              entry=workload.entry, processor=PROCESSOR,
                              options=CompilerOptions.baseline())
    return optimized, baseline


@pytest.mark.parametrize("kernel", KERNELS)
def test_e1_speedup(kernel, benchmark, record_row):
    workload = workload_by_name(kernel)
    optimized, baseline = _compile_pair(workload)
    inputs = workload.inputs(seed=11)
    golden = workload.golden(inputs)

    sim_opt = Simulator(optimized.module, optimized.processor)
    result_opt = benchmark(lambda: sim_opt.run(list(inputs)))
    result_base = Simulator(baseline.module,
                            baseline.processor).run(list(inputs))

    for label, result in (("optimized", result_opt),
                          ("baseline", result_base)):
        produced = np.asarray(result.outputs[0])
        assert np.allclose(produced, golden, atol=workload.tolerance,
                           rtol=workload.tolerance), \
            f"{kernel} ({label}): numerical mismatch vs golden model"

    speedup = result_base.report.total / result_opt.report.total
    benchmark.extra_info["baseline_cycles"] = result_base.report.total
    benchmark.extra_info["optimized_cycles"] = result_opt.report.total
    benchmark.extra_info["speedup"] = round(speedup, 2)
    record_row("E1 speedup over MATLAB-Coder-style baseline (Table 1)",
               HEADERS,
               kernel=kernel, description=workload.description,
               baseline_cycles=result_base.report.total,
               optimized_cycles=result_opt.report.total,
               speedup=f"{speedup:.2f}x")

    # Shape assertions.  (The paper reports 2x-30x on its silicon with
    # the commercial MATLAB Coder baseline; our simulated band runs
    # ~1.4x-11x — see EXPERIMENTS.md for the calibration discussion.)
    assert speedup > 1.3, f"{kernel}: no meaningful speedup ({speedup:.2f})"
    assert speedup < 64.0, f"{kernel}: implausible speedup ({speedup:.2f})"


def test_e1_band_shape(benchmark, record_row):
    """Cross-kernel shape: SIMD streaming kernels beat the IIR recurrence."""

    def compute_speedups():
        speedups = {}
        for workload in default_workloads():
            optimized, baseline = _compile_pair(workload)
            inputs = workload.inputs(seed=11)
            cycles_opt = Simulator(optimized.module, optimized.processor) \
                .run(list(inputs)).report.total
            cycles_base = Simulator(baseline.module, baseline.processor) \
                .run(list(inputs)).report.total
            speedups[workload.name] = cycles_base / cycles_opt
        return speedups

    speedups = benchmark.pedantic(compute_speedups, rounds=1, iterations=1)
    record_row("E1b speedup-band shape checks",
               ["check", "value"],
               check="min speedup (expect low, recurrence kernels)",
               value=f"{min(speedups.values()):.2f}x "
                     f"({min(speedups, key=speedups.get)})")
    record_row("E1b speedup-band shape checks",
               ["check", "value"],
               check="max speedup (expect high, streaming kernels)",
               value=f"{max(speedups.values()):.2f}x "
                     f"({max(speedups, key=speedups.get)})")
    streaming_best = max(speedups["fir"], speedups["xcorr"],
                         speedups["matmul"])
    assert streaming_best > speedups["iir"], \
        "streaming kernels must out-speed the recurrence-bound IIR"
    assert max(speedups.values()) / min(speedups.values()) > 2.0, \
        "the speedup band should span a wide range, as in the paper"
