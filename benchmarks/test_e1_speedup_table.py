"""E1 — the paper's headline table (Table 1).

Speedup of the proposed compiler over the MATLAB-Coder-style baseline on
the target ASIP (``vliw_simd_dsp``), per DSP benchmark.  The paper
reports 2x-30x across its six benchmarks; the reproduced *shape* checks
are (a) every kernel speeds up, (b) streaming SIMD-friendly kernels sit
near the top of the range, (c) the recurrence-bound IIR sits at the
bottom, and (d) both compilers' outputs are numerically correct against
the golden MATLAB interpreter.

Cycle measurements run on the compiled-closure backend (the default);
``test_e1_backend_wallclock`` is the guardrail that the backend is both
faithful (bit-identical outputs and cycle reports versus the
tree-walking reference executor) and fast (aggregate wall-clock
speedup >= 3x), and feeds the machine-readable trajectory in
``benchmarks/results/BENCH_e1.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from workloads import default_workloads, workload_by_name

from repro.compiler import CompilerOptions, compile_source

PROCESSOR = "vliw_simd_dsp"
KERNELS = [w.name for w in default_workloads()]

HEADERS = ["kernel", "description", "baseline_cycles", "optimized_cycles",
           "speedup"]

#: Wall-clock floor for the compiled backend over the tree-walker,
#: summed across all six kernels (the ISSUE acceptance criterion).
MIN_AGGREGATE_WALL_SPEEDUP = 3.0


def _compile_pair(workload):
    optimized = compile_source(workload.source, args=workload.arg_types,
                               entry=workload.entry, processor=PROCESSOR)
    baseline = compile_source(workload.source, args=workload.arg_types,
                              entry=workload.entry, processor=PROCESSOR,
                              options=CompilerOptions.baseline())
    return optimized, baseline


@pytest.mark.parametrize("kernel", KERNELS)
def test_e1_speedup(kernel, benchmark, record_row, record_bench):
    workload = workload_by_name(kernel)
    optimized, baseline = _compile_pair(workload)
    inputs = workload.inputs(seed=11)
    golden = workload.golden(inputs)

    result_opt = benchmark(lambda: optimized.simulate(list(inputs)))
    result_base = baseline.simulate(list(inputs))

    for label, result in (("optimized", result_opt),
                          ("baseline", result_base)):
        produced = np.asarray(result.outputs[0])
        assert np.allclose(produced, golden, atol=workload.tolerance,
                           rtol=workload.tolerance), \
            f"{kernel} ({label}): numerical mismatch vs golden model"

    speedup = result_base.report.total / result_opt.report.total
    benchmark.extra_info["baseline_cycles"] = result_base.report.total
    benchmark.extra_info["optimized_cycles"] = result_opt.report.total
    benchmark.extra_info["speedup"] = round(speedup, 2)
    record_row("E1 speedup over MATLAB-Coder-style baseline (Table 1)",
               HEADERS,
               kernel=kernel, description=workload.description,
               baseline_cycles=result_base.report.total,
               optimized_cycles=result_opt.report.total,
               speedup=f"{speedup:.2f}x")
    record_bench(kernel,
                 baseline_cycles=result_base.report.total,
                 optimized_cycles=result_opt.report.total,
                 cycle_speedup=round(speedup, 2))

    # Shape assertions.  (The paper reports 2x-30x on its silicon with
    # the commercial MATLAB Coder baseline; our simulated band runs
    # ~1.4x-11x — see EXPERIMENTS.md for the calibration discussion.)
    assert speedup > 1.3, f"{kernel}: no meaningful speedup ({speedup:.2f})"
    assert speedup < 64.0, f"{kernel}: implausible speedup ({speedup:.2f})"


def test_e1_backend_wallclock(benchmark, record_row, record_bench):
    """Compiled backend: identical results, >= 3x aggregate wall clock."""

    def measure():
        total_ref = total_comp = 0.0
        for workload in default_workloads():
            optimized, _ = _compile_pair(workload)
            inputs = workload.inputs(seed=11)

            t0 = time.perf_counter()
            ref = optimized.simulate(list(inputs), backend="reference")
            ref_wall = time.perf_counter() - t0

            optimized.compiled_program()    # translate outside the timer
            t0 = time.perf_counter()
            comp = optimized.simulate(list(inputs), backend="compiled")
            comp_wall = time.perf_counter() - t0

            for a, b in zip(ref.outputs, comp.outputs):
                assert np.array_equal(np.asarray(a), np.asarray(b)), \
                    f"{workload.name}: compiled backend output mismatch"
            assert ref.report.total == comp.report.total
            assert ref.report.by_category == comp.report.by_category
            assert ref.report.instruction_counts == \
                comp.report.instruction_counts

            total_ref += ref_wall
            total_comp += comp_wall
            record_bench(workload.name,
                         reference_wall_s=round(ref_wall, 6),
                         compiled_wall_s=round(comp_wall, 6),
                         wall_speedup=round(ref_wall / comp_wall, 2))
            record_row("E1c simulator backend wall clock",
                       ["kernel", "reference_ms", "compiled_ms", "speedup"],
                       kernel=workload.name,
                       reference_ms=f"{ref_wall * 1e3:.2f}",
                       compiled_ms=f"{comp_wall * 1e3:.2f}",
                       speedup=f"{ref_wall / comp_wall:.2f}x")
        return total_ref, total_comp

    # pedantic keeps this test in the --benchmark-only selection while
    # the inner perf_counter timers do the actual per-backend split.
    total_ref, total_comp = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    aggregate = total_ref / total_comp
    record_row("E1c simulator backend wall clock",
               ["kernel", "reference_ms", "compiled_ms", "speedup"],
               kernel="TOTAL",
               reference_ms=f"{total_ref * 1e3:.2f}",
               compiled_ms=f"{total_comp * 1e3:.2f}",
               speedup=f"{aggregate:.2f}x")
    assert aggregate >= MIN_AGGREGATE_WALL_SPEEDUP, \
        f"compiled backend only {aggregate:.2f}x over the reference " \
        f"executor (need >= {MIN_AGGREGATE_WALL_SPEEDUP}x)"


def test_e1_band_shape(benchmark, record_row):
    """Cross-kernel shape: SIMD streaming kernels beat the IIR recurrence."""

    def compute_speedups():
        speedups = {}
        for workload in default_workloads():
            optimized, baseline = _compile_pair(workload)
            inputs = workload.inputs(seed=11)
            cycles_opt = optimized.simulate(list(inputs)).report.total
            cycles_base = baseline.simulate(list(inputs)).report.total
            speedups[workload.name] = cycles_base / cycles_opt
        return speedups

    speedups = benchmark.pedantic(compute_speedups, rounds=1, iterations=1)
    record_row("E1b speedup-band shape checks",
               ["check", "value"],
               check="min speedup (expect low, recurrence kernels)",
               value=f"{min(speedups.values()):.2f}x "
                     f"({min(speedups, key=speedups.get)})")
    record_row("E1b speedup-band shape checks",
               ["check", "value"],
               check="max speedup (expect high, streaming kernels)",
               value=f"{max(speedups.values()):.2f}x "
                     f"({max(speedups, key=speedups.get)})")
    streaming_best = max(speedups["fir"], speedups["xcorr"],
                         speedups["matmul"])
    assert streaming_best > speedups["iir"], \
        "streaming kernels must out-speed the recurrence-bound IIR"
    assert max(speedups.values()) / min(speedups.values()) > 2.0, \
        "the speedup band should span a wide range, as in the paper"
