"""E6 — SIMD-width sweep (extension figure, per the 2017 follow-up).

The same kernels are compiled against a parametric family of SIMD DSPs
with 2/4/8/16 double-precision lanes.  Expected shape: speedup grows
with lane count and saturates as fixed overheads (loop tails, memory
issue slots, non-vectorizable stages) start to dominate — the classical
diminishing-returns curve.
"""

from __future__ import annotations

import numpy as np
import pytest
from workloads import workload_by_name

from repro.asip.isa_library import simd_dsp_with_width
from repro.compiler import CompilerOptions, compile_source

WIDTHS = [2, 4, 8, 16]
KERNELS = ["fir", "matmul", "xcorr"]

HEADERS = ["kernel"] + [f"x{w}" for w in WIDTHS]


@pytest.mark.parametrize("kernel", KERNELS)
def test_e6_width_sweep(kernel, benchmark, record_row):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=59)
    golden = workload.golden(inputs)

    def measure():
        speedups = {}
        for width in WIDTHS:
            processor = simd_dsp_with_width(width)
            optimized = compile_source(workload.source,
                                       args=workload.arg_types,
                                       entry=workload.entry,
                                       processor=processor)
            baseline = compile_source(workload.source,
                                      args=workload.arg_types,
                                      entry=workload.entry,
                                      processor=processor,
                                      options=CompilerOptions.baseline())
            run_opt = optimized.simulate(list(inputs))
            run_base = baseline.simulate(list(inputs))
            produced = np.asarray(run_opt.outputs[0])
            assert np.allclose(produced, golden, atol=workload.tolerance,
                               rtol=workload.tolerance)
            speedups[width] = run_base.report.total / run_opt.report.total
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_row("E6 speedup vs SIMD width (sweep figure)", HEADERS,
               kernel=kernel,
               **{f"x{w}": f"{speedups[w]:.2f}x" for w in WIDTHS})

    # Monotone growth with diminishing returns.
    for narrow, wide in zip(WIDTHS, WIDTHS[1:]):
        assert speedups[wide] >= speedups[narrow] * 0.95, \
            f"{kernel}: speedup dropped from x{narrow} to x{wide}"
    assert speedups[16] > speedups[2] * 1.3, \
        f"{kernel}: widening lanes 2->16 should pay off"
    gain_lo = speedups[4] / speedups[2]
    gain_hi = speedups[16] / speedups[8]
    assert gain_hi <= gain_lo * 1.15, \
        f"{kernel}: expected diminishing returns at wide lanes"
