"""E4 — the ANSI C claim.

"The generated code can be used as input to any C/C++ compiler": every
benchmark, in both baseline and optimized form, must compile with a host
C compiler in strict C89 mode (``-std=c89 -pedantic``) and — when run on
the host through the portable intrinsic fallbacks — reproduce the golden
interpreter's numbers.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest
from workloads import default_workloads, workload_by_name

from repro.backend.harness import run_via_gcc
from repro.compiler import CompilerOptions, compile_source

KERNELS = [w.name for w in default_workloads()]

pytestmark = pytest.mark.skipif(shutil.which("gcc") is None,
                                reason="gcc not available")

HEADERS = ["kernel", "mode", "compiles_c89", "max_abs_error"]


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("mode", ["optimized", "baseline"])
def test_e4_ansi_c(kernel, mode, benchmark, record_row):
    workload = workload_by_name(kernel)
    options = CompilerOptions.baseline() if mode == "baseline" else None
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry, options=options)
    inputs = workload.inputs(seed=47)
    golden = workload.golden(inputs)

    outputs = benchmark.pedantic(
        lambda: run_via_gcc(result, list(inputs)), rounds=1, iterations=1)
    produced = np.asarray(outputs[0])
    error = float(np.max(np.abs(produced - golden)))
    record_row("E4 strict-ANSI host compilation of generated C",
               HEADERS, kernel=kernel, mode=mode, compiles_c89="yes",
               max_abs_error=f"{error:.3e}")
    scale = float(np.max(np.abs(golden))) or 1.0
    assert error <= workload.tolerance * max(scale, 1.0), \
        f"{kernel}/{mode}: gcc-run output differs from golden model"
