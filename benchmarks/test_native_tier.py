"""Native execution tier — wall clock across all three tiers.

For every E1 kernel, measures one simulation on the tree-walking
reference executor, the compiled-closure backend, and the native ``.so``
tier (cold — including the gcc build — and warm — the in-process ctypes
dispatch after the artifact is cached), checks the native outputs
against the golden MATLAB interpreter, and records the per-kernel
trajectory into ``benchmarks/results/BENCH_native.json``.

The acceptance floor from the ISSUE: the dense/transform kernels
(matmul, fft) must run at least ``MIN_FAST_SPEEDUP`` x faster warm-native
than on the compiled-closure backend (the observed band is far higher —
see the recorded JSON — but the assertion stays conservative so slower
CI hosts do not flap).
"""

from __future__ import annotations

import shutil
import time

import numpy as np
import pytest
from workloads import default_workloads

from repro.compiler import compile_source
from repro.native import NativeCache, NativeProgram

PROCESSOR = "vliw_simd_dsp"

HAVE_GCC = shutil.which("gcc") is not None
pytestmark = pytest.mark.skipif(
    not HAVE_GCC, reason="native tier requires a host C compiler (gcc)")

#: Kernels the ISSUE names as the 10x-class beneficiaries; asserted
#: conservatively, actual ratios land in BENCH_native.json.
FAST_KERNELS = ("matmul", "fft")
MIN_FAST_SPEEDUP = 5.0

#: Warm native calls are microseconds; average over a batch so the
#: perf_counter granularity does not dominate.
WARM_CALLS = 20

HEADERS = ["kernel", "reference_ms", "compiled_ms", "native_cold_ms",
           "native_warm_ms", "native_vs_compiled"]


def test_native_tier_wallclock(benchmark, record_row, record_native_bench,
                               tmp_path):
    """Three-tier wall clock, cold vs warm native cache, per kernel."""

    def measure():
        speedups = {}
        for workload in default_workloads():
            result = compile_source(workload.source,
                                    args=workload.arg_types,
                                    entry=workload.entry,
                                    processor=PROCESSOR)
            inputs = workload.inputs(seed=11)
            golden = workload.golden(inputs)

            t0 = time.perf_counter()
            ref = result.simulate(list(inputs), backend="reference")
            ref_wall = time.perf_counter() - t0

            result.compiled_program()      # translate outside the timer
            t0 = time.perf_counter()
            comp = result.simulate(list(inputs), backend="compiled")
            comp_wall = time.perf_counter() - t0

            # Cold: a private empty cache directory, so the timer spans
            # the gcc -shared build plus the dlopen.
            cold_cache = NativeCache(cache_dir=tmp_path / workload.name)
            t0 = time.perf_counter()
            program = NativeProgram(result.module, result.processor,
                                    cache=cold_cache)
            native = program.run(list(inputs))
            cold_wall = time.perf_counter() - t0
            assert cold_cache.stats()["builds"] == 1

            # Warm: the library is already mapped; pure dispatch.
            t0 = time.perf_counter()
            for _ in range(WARM_CALLS):
                native = program.run(list(inputs))
            warm_wall = (time.perf_counter() - t0) / WARM_CALLS

            for label, run in (("reference", ref), ("compiled", comp),
                               ("native", native)):
                produced = np.asarray(run.outputs[0])
                assert np.allclose(produced, golden,
                                   atol=workload.tolerance,
                                   rtol=workload.tolerance), \
                    f"{workload.name} ({label}): mismatch vs golden"

            speedup = comp_wall / warm_wall
            speedups[workload.name] = speedup
            record_row("N1 native tier wall clock (three execution tiers)",
                       HEADERS,
                       kernel=workload.name,
                       reference_ms=f"{ref_wall * 1e3:.2f}",
                       compiled_ms=f"{comp_wall * 1e3:.2f}",
                       native_cold_ms=f"{cold_wall * 1e3:.2f}",
                       native_warm_ms=f"{warm_wall * 1e3:.4f}",
                       native_vs_compiled=f"{speedup:.0f}x")
            record_native_bench(workload.name,
                                reference_wall_s=round(ref_wall, 6),
                                compiled_wall_s=round(comp_wall, 6),
                                native_cold_wall_s=round(cold_wall, 6),
                                native_warm_wall_s=round(warm_wall, 9),
                                native_speedup_vs_compiled=round(speedup, 1))
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    for kernel in FAST_KERNELS:
        assert speedups[kernel] >= MIN_FAST_SPEEDUP, \
            f"{kernel}: warm native only {speedups[kernel]:.1f}x over the " \
            f"compiled backend (need >= {MIN_FAST_SPEEDUP}x)"


def test_native_tier_cache_reuse(benchmark, record_row, tmp_path):
    """Second program over the same source performs zero gcc builds."""

    def measure():
        workload = default_workloads()[4]       # matmul
        assert workload.name == "matmul"
        result = compile_source(workload.source, args=workload.arg_types,
                                entry=workload.entry, processor=PROCESSOR)
        cache = NativeCache(cache_dir=tmp_path / "reuse")

        t0 = time.perf_counter()
        NativeProgram(result.module, result.processor, cache=cache)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        NativeProgram(result.module, result.processor, cache=cache)
        warm = time.perf_counter() - t0

        stats = cache.stats()
        assert stats["builds"] == 1, "second program must not rebuild"
        assert stats["cache_hits"] == 1
        return cold, warm

    cold, warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_row("N1b native tier cache reuse",
               ["step", "wall_ms"],
               step="cold build + dlopen", wall_ms=f"{cold * 1e3:.2f}")
    record_row("N1b native tier cache reuse",
               ["step", "wall_ms"],
               step="warm (in-memory hit)", wall_ms=f"{warm * 1e3:.4f}")
    assert warm < cold, "warm load must beat the cold gcc build"
