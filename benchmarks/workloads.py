"""Benchmark kernel registry shared by every experiment (E1-E6).

The first six DSP kernels match the paper's evaluation style ("six DSP
benchmarks"): streaming filters, complex arithmetic, a transform, and
dense linear algebra, in the precisions a DSP ASIP would run them.
The last four are 5G base-station kernels (channel estimation, QR,
batched 3x3 inversion, beamforming weights) that exercise user-defined
functions, multi-return calls, and while loops.  Each workload knows
how to build its argument type specs, generate deterministic inputs,
and compute a golden reference via the numpy-backed MATLAB
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.compiler import arg
from repro.mlab.interp import MatlabInterpreter
from repro.semantics.types import MType

KERNEL_DIR = Path(__file__).resolve().parent.parent / "examples" / "mlab"


def kernel_source(name: str) -> str:
    return (KERNEL_DIR / f"{name}.m").read_text()


@dataclass
class Workload:
    """One benchmark kernel instance."""

    name: str
    entry: str
    description: str
    arg_types: list[MType]
    make_inputs: Callable[[np.random.Generator], list[np.ndarray]]
    tolerance: float = 1e-9
    source: str = field(default="")

    def __post_init__(self) -> None:
        if not self.source:
            self.source = kernel_source(self.entry)

    def inputs(self, seed: int = 0) -> list[np.ndarray]:
        return self.make_inputs(np.random.default_rng(seed))

    def golden(self, inputs: list[np.ndarray]) -> np.ndarray:
        interp = MatlabInterpreter(self.source)
        return np.asarray(interp.call(self.entry, list(inputs))[0])


def _rand(rng: np.random.Generator, shape, dtype=np.float64,
          complex_valued=False):
    data = rng.standard_normal(shape)
    if complex_valued:
        data = data + 1j * rng.standard_normal(shape)
        return data.astype(np.complex128)
    return data.astype(dtype)


def default_workloads(scale: int = 1) -> list[Workload]:
    """The ten benchmarks at the default evaluation sizes.

    ``scale`` multiplies the data sizes (used by sweep experiments).
    """
    n = 256 * scale
    taps = 32
    mat = 32
    fft_n = 128 * scale  # must stay a power of two
    while fft_n & (fft_n - 1):
        fft_n -= 1

    return [
        Workload(
            name="fir",
            entry="fir",
            description=f"FIR filter, {n} samples x {taps} taps (single)",
            arg_types=[arg((1, n), dtype="single"),
                       arg((1, taps), dtype="single")],
            make_inputs=lambda rng, n=n, taps=taps: [
                _rand(rng, (1, n), np.float32),
                (_rand(rng, (1, taps)) / taps).astype(np.float32)],
            tolerance=2e-4,
        ),
        Workload(
            name="iir",
            entry="iir_biquad",
            description=f"biquad cascade IIR, {n} samples (double)",
            arg_types=[arg((1, n)), arg((1, 3)), arg((1, 3))],
            make_inputs=lambda rng, n=n: [
                _rand(rng, (1, n)),
                np.array([[0.2, 0.35, 0.2]]),
                np.array([[1.0, -0.4, 0.15]])],
            tolerance=1e-9,
        ),
        Workload(
            name="cdot",
            entry="cdot",
            description=f"complex dot product, {n} points (complex double)",
            arg_types=[arg((1, n), complex=True),
                       arg((1, n), complex=True)],
            make_inputs=lambda rng, n=n: [
                _rand(rng, (1, n), complex_valued=True),
                _rand(rng, (1, n), complex_valued=True)],
            tolerance=1e-9,
        ),
        Workload(
            name="fft",
            entry="fft_spectrum",
            description=f"power spectrum via radix-2 FFT, {fft_n} points",
            arg_types=[arg((1, fft_n))],
            make_inputs=lambda rng, fft_n=fft_n: [_rand(rng, (1, fft_n))],
            tolerance=1e-8,
        ),
        Workload(
            name="matmul",
            entry="matmul",
            description=f"matrix product {mat}x{mat} (single)",
            arg_types=[arg((mat, mat), dtype="single"),
                       arg((mat, mat), dtype="single")],
            make_inputs=lambda rng, mat=mat: [
                _rand(rng, (mat, mat), np.float32),
                _rand(rng, (mat, mat), np.float32)],
            tolerance=5e-3,
        ),
        Workload(
            name="xcorr",
            entry="xcorr_kernel",
            description=f"cross-correlation, {n // 2} x {n} (single)",
            arg_types=[arg((1, n // 2), dtype="single"),
                       arg((1, n), dtype="single")],
            make_inputs=lambda rng, n=n: [
                _rand(rng, (1, n // 2), np.float32),
                _rand(rng, (1, n), np.float32)],
            tolerance=2e-3,
        ),
        Workload(
            name="channel_est",
            entry="channel_est",
            description=f"LS channel estimation, {fft_n} pilot subcarriers "
                        "(complex double)",
            arg_types=[arg((1, fft_n), complex=True),
                       arg((1, fft_n), complex=True)],
            # Pilots are offset away from zero so the per-subcarrier
            # division stays well conditioned for any seed.
            make_inputs=lambda rng, fft_n=fft_n: [
                _rand(rng, (1, fft_n), complex_valued=True),
                _rand(rng, (1, fft_n), complex_valued=True) + 2.0],
            tolerance=1e-7,
        ),
        Workload(
            name="qr_gs",
            entry="qr_gs",
            description="QR factorization via modified Gram-Schmidt, "
                        "12x12 (double)",
            arg_types=[arg((12, 12))],
            # Diagonal shift keeps the columns independent so the
            # normalization never divides by a vanishing norm.
            make_inputs=lambda rng: [
                _rand(rng, (12, 12)) + 4.0 * np.eye(12)],
            tolerance=1e-8,
        ),
        Workload(
            name="inv3x3",
            entry="inv3x3",
            description=f"batched 3x3 inversion, {64 * scale} matrices "
                        "in SoA layout (double)",
            arg_types=[arg((9, 64 * scale))],
            # Each column is a column-major 3x3 matrix; adding 4*I makes
            # every matrix diagonally dominant, bounding dets away from 0.
            make_inputs=lambda rng, t=64 * scale: [
                _rand(rng, (9, t))
                + 4.0 * np.tile(np.eye(3).reshape(9, 1, order="F"), (1, t))],
            tolerance=1e-8,
        ),
        Workload(
            name="bf_weights",
            entry="bf_weights",
            description=f"MRC beamforming weights, {64 * scale} antennas "
                        "(complex double)",
            arg_types=[arg((1, 64 * scale), complex=True), arg((1, 1))],
            make_inputs=lambda rng, n=64 * scale: [
                _rand(rng, (1, n), complex_valued=True),
                np.array([[0.5]])],
            tolerance=1e-9,
        ),
    ]


def workload_by_name(name: str, scale: int = 1) -> Workload:
    for workload in default_workloads(scale):
        if workload.name == name:
            return workload
    raise KeyError(name)
