"""E2 — where the speedup comes from (reconstructed Table 2).

Ablation over the pipeline's feature switches, per kernel:

* ``baseline``      — naive scalarized C (MATLAB-Coder analogue);
* ``+scalar-opt``   — fused lowering + folding/propagation/fusion/CSE;
* ``+SIMD``         — scalar-opt plus SIMD vectorization;
* ``+complex``      — scalar-opt plus complex/MAC instruction selection;
* ``full``          — everything (the proposed compiler).

Shape checks: every feature is monotonically non-harmful, SIMD is the
dominant contributor on streaming real kernels, and complex-arithmetic
instructions only move complex kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from workloads import default_workloads, workload_by_name

from repro.compiler import CompilerOptions, compile_source

PROCESSOR = "vliw_simd_dsp"
KERNELS = [w.name for w in default_workloads()]

CONFIGS = {
    "baseline": CompilerOptions.baseline(),
    "+scalar-opt": CompilerOptions(simd=False, complex_isel=False,
                                   scalar_mac=False),
    "+SIMD": CompilerOptions(complex_isel=False, scalar_mac=False),
    "+complex": CompilerOptions(simd=False),
    "full": CompilerOptions(),
}

HEADERS = ["kernel"] + list(CONFIGS) + ["full_speedup"]


def _cycles(workload, options, inputs, golden):
    result = compile_source(workload.source, args=workload.arg_types,
                            entry=workload.entry, processor=PROCESSOR,
                            options=options)
    run = result.simulate(list(inputs))
    produced = np.asarray(run.outputs[0])
    assert np.allclose(produced, golden, atol=workload.tolerance,
                       rtol=workload.tolerance)
    return run.report.total


@pytest.mark.parametrize("kernel", KERNELS)
def test_e2_breakdown(kernel, benchmark, record_row):
    workload = workload_by_name(kernel)
    inputs = workload.inputs(seed=23)
    golden = workload.golden(inputs)

    def measure():
        return {name: _cycles(workload, options, inputs, golden)
                for name, options in CONFIGS.items()}

    cycles = benchmark.pedantic(measure, rounds=1, iterations=1)
    row = {name: cycles[name] for name in CONFIGS}
    speedup = cycles["baseline"] / cycles["full"]
    record_row("E2 cycle count by enabled feature (Table 2)",
               HEADERS, kernel=kernel, full_speedup=f"{speedup:.2f}x",
               **row)

    # Each feature must not hurt relative to its base configuration
    # (2% slack for second-order interactions).
    assert cycles["+scalar-opt"] <= cycles["baseline"] * 1.02
    assert cycles["+SIMD"] <= cycles["+scalar-opt"] * 1.02
    assert cycles["+complex"] <= cycles["+scalar-opt"] * 1.02
    assert cycles["full"] <= min(cycles["+SIMD"],
                                 cycles["+complex"]) * 1.02

    is_complex_kernel = kernel in ("cdot", "fft", "channel_est")
    simd_gain = cycles["+scalar-opt"] / cycles["+SIMD"]
    complex_gain = cycles["+scalar-opt"] / cycles["+complex"]
    if kernel in ("fir", "xcorr", "matmul"):
        assert simd_gain > 2.0, \
            f"{kernel}: SIMD should dominate streaming kernels " \
            f"({simd_gain:.2f})"
        assert complex_gain < 1.6, \
            f"{kernel}: complex instructions should barely move a real " \
            f"kernel ({complex_gain:.2f})"
    if is_complex_kernel:
        assert complex_gain > 1.05, \
            f"{kernel}: complex instructions should help ({complex_gain:.2f})"
