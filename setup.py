from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Retargetable MATLAB-to-C compiler exploiting ASIP custom "
        "instructions (DATE 2016 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-mc = repro.cli:main",
            "repro-fuzz = repro.fuzz.cli:main",
            "repro-batch = repro.service.cli:main",
            "repro-serve = repro.serve.cli:main",
            "repro-stats = repro.observe.stats_cli:main",
            "repro-dse = repro.dse.cli:main",
        ]
    },
)
